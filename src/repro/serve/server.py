"""The detection service: asyncio HTTP front end over the engine.

:class:`DetectionServer` owns the whole serving stack — one
:class:`~repro.detect.pipeline.FaceDetectionPipeline`, one
:class:`~repro.detect.engine.DetectionEngine`, one
:class:`~repro.serve.batcher.MicroBatcher`, one
:class:`~repro.serve.admission.AdmissionController` — and speaks the
protocol from :mod:`repro.serve.protocol` on a plain TCP listener.

Request lifecycle for ``POST /v1/detect`` (each stage is a span on the
shared tracer, so one Chrome trace shows network-to-network latency
next to the simulated kernel schedule):

    read request -> admit (or 429) -> decode frame -> queue_wait
    -> batch_form -> infer (engine batch) -> serialize -> write

Lifecycle endpoints:

* ``/healthz`` — liveness: 200 from the instant the listener binds;
* ``/readyz`` — readiness: 503 until warmup (one real frame through the
  engine, so first-request latency is never paying pool/workspace
  construction) and 503 again once a drain starts;
* ``/metrics`` — the raw metrics-registry snapshot as JSON;
* ``/stats`` — the full observability snapshot plus the serving block
  (admission counters, batcher config, lifecycle state).

Shutdown is a graceful drain: stop accepting, finish queued requests,
then tear down the engine.  A SIGTERM/SIGINT triggers the same path.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    BadRequestError,
    ConfigurationError,
    RequestSheddedError,
    WorkerCrashError,
)
from repro.obs.context import TraceContext
from repro.obs.flight import FlightRecorder
from repro.obs.log import FORMATS as LOG_FORMATS
from repro.obs.log import StructuredLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import PROM_CONTENT_TYPE, render_prometheus
from repro.obs.report import build_snapshot
from repro.obs.tracer import Tracer
from repro.detect.swap import EngineSlot
from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.batcher import MicroBatcher, RequestTelemetry
from repro.serve.models import ModelManager
from repro.serve.protocol import (
    TRACE_ID_HEADER,
    decode_frame,
    detections_payload,
    encode_response,
    json_body,
    read_request,
)

__all__ = ["ServerConfig", "DetectionServer", "TRACE_ID_HEADER"]

#: flight-dump filename used when none is configured (signal-triggered
#: dumps under the CLI; never written by in-test servers, which leave
#: ``flight_path`` unset)
DEFAULT_FLIGHT_PATH = "FLIGHT_serve.json"


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8035
    cascade: str = "quick"
    #: zoo model reference (``model`` / ``model@version``) or a cascade
    #: JSON path; overrides ``cascade`` when set.  SIGHUP re-resolves it
    #: (aliases like ``quick`` mean ``quick@latest``) and hot-swaps when
    #: the target moved; ``POST /v1/models/swap`` swaps explicitly.
    model: str | None = None
    backend: str | None = None
    #: compute device kind (``auto`` | ``cuda`` | ``mps`` | ``cpu``);
    #: ``None`` keeps the backend's own device resolution
    device: str | None = None
    #: fast-path policy (``off`` | ``exact`` | ``fast``); ``None`` ->
    #: ``REPRO_FASTPATH`` or off.  Serving frames come from unrelated
    #: clients, so the engine runs with temporal reuse disabled either
    #: way — only the stateless proposal screen applies under ``fast``.
    fastpath: str | None = None
    workers: int = 1
    sharding: str = "threads"
    max_batch: int = 4
    max_delay_s: float = 0.005
    #: fuse each micro-batch into one engine device batch (same-shaped
    #: frames share fused kernels and one simulated schedule) instead of
    #: one ``submit`` per frame
    device_batch: bool = False
    max_body_bytes: int = 8 * 1024 * 1024
    admission: AdmissionConfig = AdmissionConfig()
    #: frame side length used for the warmup frame
    warmup_side: int = 96
    trace: bool = False
    #: structured-log format (``json`` | ``text``); level comes from
    #: ``log_level`` or the ``REPRO_LOG`` environment variable
    log_format: str = "text"
    log_level: str | None = None
    #: flight-recorder ring size (last N request + lifecycle events)
    flight_capacity: int = 256
    #: where crash/SIGUSR2 flight dumps are written; ``None`` disables
    #: automatic file dumps (``GET /debug/flight`` always works)
    flight_path: str | None = None

    def validate(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.max_body_bytes < 1024:
            raise ConfigurationError(
                f"max_body_bytes must be >= 1024, got {self.max_body_bytes}"
            )
        if self.log_format not in LOG_FORMATS:
            raise ConfigurationError(
                f"unknown log format {self.log_format!r}; "
                f"choose from {list(LOG_FORMATS)}"
            )
        if self.flight_capacity < 1:
            raise ConfigurationError(
                f"flight_capacity must be >= 1, got {self.flight_capacity}"
            )
        self.admission.validate()


def _load_model(
    ref: str,
    backend: str | None,
    tracer: Tracer,
    fastpath: str | None = None,
    device: str | None = None,
):
    """Resolve a model reference into ``(pipeline, model info)``.

    Accepts built-in recipe names (``quick`` / ``paper`` / ``opencv``,
    trained through the zoo on first use), zoo references
    (``model@version``), and cascade JSON paths.
    """
    from repro.detect.pipeline import FaceDetectionPipeline, PipelineConfig
    from repro.zoo import resolve_model

    cascade, manifest = resolve_model(ref)
    if manifest is not None:
        info = {
            "ref": ref,
            "model": manifest.model,
            "version": manifest.version,
            "version_tag": f"{manifest.model}@{manifest.version}",
            "source": manifest.source,
            "content_digest": manifest.content_digest,
        }
    else:
        info = {
            "ref": ref,
            "model": cascade.name,
            "version": "file",
            "version_tag": f"{cascade.name}@file",
            "source": "file",
            "content_digest": None,
        }
    pipeline = FaceDetectionPipeline(
        cascade,
        config=PipelineConfig(backend=backend, device=device, fastpath=fastpath),
        tracer=tracer,
    )
    return pipeline, info


def _build_pipeline(
    cascade: str,
    backend: str | None,
    tracer: Tracer,
    fastpath: str | None = None,
    device: str | None = None,
):
    return _load_model(
        cascade, backend, tracer, fastpath=fastpath, device=device
    )[0]


class DetectionServer:
    """One serving instance: listener + admission + batcher + engine."""

    def __init__(
        self, config: ServerConfig | None = None, *, log_stream=None
    ) -> None:
        self._config = config or ServerConfig()
        self._config.validate()
        self._tracer = Tracer(enabled=self._config.trace)
        self._metrics = MetricsRegistry()
        # ``log_stream`` overrides stderr (benchmarks and tests capture it)
        self._log = StructuredLogger(
            self._config.log_format,
            level=self._config.log_level,
            stream=log_stream,
        )
        self._flight = FlightRecorder(self._config.flight_capacity)
        self._admission = AdmissionController(
            self._config.admission, metrics=self._metrics
        )
        self._manager: ModelManager | None = None
        self._slot: EngineSlot | None = None
        self._batcher: MicroBatcher | None = None
        # ONE infer thread: batches serialise through it in order, and
        # each dispatch is a single executor hop for the whole batch
        self._infer_pool: ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._ready = asyncio.Event()
        self._draining = False
        self._stopped = asyncio.Event()
        self._connections: set[asyncio.StreamWriter] = set()
        self._busy = 0
        self._idle_waiter: asyncio.Event = asyncio.Event()
        self._started_pc: float | None = None

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def _engine(self):
        """The live engine — always read through the hot-swap slot."""
        return self._slot.engine if self._slot is not None else None

    @property
    def _pipeline(self):
        engine = self._engine
        return engine.pipeline if engine is not None else None

    @property
    def model_version(self) -> str | None:
        """The ``model@version`` tag currently serving."""
        return self._slot.model_version if self._slot is not None else None

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    @property
    def log(self) -> StructuredLogger:
        return self._log

    @property
    def flight(self) -> FlightRecorder:
        return self._flight

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        if self._server is None:
            raise ConfigurationError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def ready(self) -> bool:
        return self._ready.is_set() and not self._draining

    async def start(self) -> None:
        """Bind the listener and warm up; returns once ready."""
        if self._server is not None:
            raise ConfigurationError("server is already started")

        cfg = self._config
        self._infer_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-infer"
        )
        self._manager = ModelManager(
            build_pipeline=lambda ref: _load_model(
                ref,
                cfg.backend,
                self._tracer,
                fastpath=cfg.fastpath,
                device=cfg.device,
            ),
            build_engine=self._build_engine,
            warm=self._warm_engine,
            flip_executor=self._infer_pool,
            tracer=self._tracer,
            metrics=self._metrics,
            lifecycle=self._lifecycle,
        )
        self._slot = self._manager.boot(cfg.model or cfg.cascade)
        self._batcher = MicroBatcher(
            self._infer,
            max_batch=cfg.max_batch,
            max_delay_s=cfg.max_delay_s,
            executor=self._infer_pool,
            tracer=self._tracer,
            metrics=self._metrics,
        )
        self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, cfg.host, cfg.port
        )
        self._started_pc = time.perf_counter()
        self._lifecycle(
            "listening",
            host=cfg.host,
            port=self.port,
            workers=cfg.workers,
            sharding=self._engine.sharding.value,
        )
        # liveness is now green; readiness flips after the warmup frame
        warmup_start = time.perf_counter()
        await asyncio.get_running_loop().run_in_executor(
            self._infer_pool, self._warmup
        )
        self._ready.set()
        self._lifecycle(
            "warmup", warmup_s=round(time.perf_counter() - warmup_start, 6)
        )

    def _build_engine(self, pipeline):
        """One engine over ``pipeline`` with the server's tuning.

        Used at boot and for every hot-swap, so a swapped-in model runs
        under exactly the configuration the boot model did.
        """
        from repro.detect.engine import DetectionEngine

        cfg = self._config
        return DetectionEngine(
            pipeline,
            workers=cfg.workers,
            sharding=cfg.sharding,
            tracer=self._tracer,
            metrics=self._metrics,
            # requests from different clients must never delta against
            # each other: temporal reuse off, proposal screen still on
            fastpath_stream=None,
            # the micro-batcher's coalesced window becomes one fused
            # device batch, capped at the batcher's own max_batch
            batch_across_frames=cfg.device_batch,
            device_batch=cfg.max_batch if cfg.device_batch else None,
        )

    def _infer(self, lumas: list, traces: list | None = None) -> list:
        """Run one micro-batch through the engine.

        The batcher's coalesced window goes down as one
        :meth:`~repro.detect.engine.DetectionEngine.submit_batch` call
        on whatever engine the hot-swap slot currently holds — the slot
        is read once per batch, and swaps execute on this same
        single-thread executor, so a batch can never straddle two
        engines.  With ``device_batch`` on, consecutive same-shaped
        requests fuse into one device batch (shared kernels, one
        simulated schedule); with it off, the engine degrades to one
        ``submit`` per frame.  Either way each request's trace id
        reaches its worker — thread or process — so worker-side
        ``frame`` spans and the result's ``worker`` attribution stay
        request-scoped.  Results come back in batch order, stamped with
        the serving model version; any worker failure fails the whole
        batch, exactly as the streaming path did.
        """
        return self._slot.infer(lumas, traces)

    def _warm_engine(self, engine) -> None:
        """Workspace plans + one synthetic frame through ``engine``."""
        side = self._config.warmup_side
        frame = np.zeros((side, side), dtype=np.float32)
        list(engine.process_frames([frame]))
        self._metrics.counter("serve.warmup_frames").inc()

    def _warmup(self) -> None:
        self._warm_engine(self._engine)

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT drain; SIGUSR2 dumps flight; SIGHUP reloads model.

        SIGHUP re-resolves the configured model reference (an alias like
        ``quick`` means ``quick@latest``) and hot-swaps when the target
        moved — the symlink-flip deployment idiom, with no restart.
        """
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.drain())
            )
        loop.add_signal_handler(sig=signal.SIGUSR2, callback=self.dump_flight)
        loop.add_signal_handler(
            signal.SIGHUP,
            lambda: asyncio.ensure_future(self.reload_model()),
        )

    async def reload_model(self) -> dict | None:
        """Re-resolve ``--model`` and swap if it points elsewhere now."""
        if self._manager is None:
            return None
        return await self._manager.reload()

    def dump_flight(self, reason: str = "signal") -> str | None:
        """Write the flight ring to the configured dump path; returns it."""
        path = self._config.flight_path or DEFAULT_FLIGHT_PATH
        try:
            self._flight.dump(path, reason=reason)
        except OSError as exc:  # pragma: no cover - disk trouble
            self._log.event(
                "lifecycle", level="error", phase="flight_dump_failed",
                error=str(exc), path=path,
            )
            return None
        self._log.event("lifecycle", phase="flight_dump", path=path, reason=reason)
        return path

    async def wait_closed(self) -> None:
        """Block until a drain completes."""
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: finish admitted work, then tear down.

        Kubernetes-style ordering: readiness flips to 503 *first* (so
        ``/readyz`` pollers and load balancers observe the drain while
        in-flight requests finish), new ``/v1/detect`` requests are
        refused with 503 + ``Retry-After``, and only once the last busy
        request completes does the listener close and the engine tear
        down.
        """
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True  # /readyz answers 503 from here on
        self._lifecycle("drain_begin", busy=self._busy)
        while self._busy > 0:
            self._idle_waiter.clear()
            await self._idle_waiter.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        if self._batcher is not None:
            await self._batcher.aclose()
        if self._engine is not None:
            self._engine.drain()
            self._engine.close()
        if self._manager is not None:
            self._manager.close()
        if self._infer_pool is not None:
            self._infer_pool.shutdown(wait=True)
        self._lifecycle(
            "stopped",
            requests=int(self._metrics.counter("serve.requests").value),
        )
        self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self._config.max_body_bytes
                    )
                except BadRequestError as exc:
                    self._count_status(exc.status)
                    writer.write(
                        encode_response(
                            exc.status,
                            json_body({"error": str(exc)}),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                # busy covers the response write too: a drain must not
                # close the connection between compute and flush
                self._busy += 1
                try:
                    status, payload = await self._respond(request)
                    keep_alive = request.keep_alive and not self._draining
                    writer.write(
                        encode_response(status, payload[0], keep_alive=keep_alive,
                                        extra_headers=payload[1])
                    )
                    await writer.drain()
                finally:
                    self._busy -= 1
                    if self._busy == 0:
                        self._idle_waiter.set()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _respond(self, request) -> tuple[int, tuple[bytes, dict | None]]:
        """Route one request; returns ``(status, (body, extra_headers))``."""
        try:
            return await self._route(request)
        except BadRequestError as exc:
            self._count_status(exc.status)
            return exc.status, (json_body({"error": str(exc)}), None)
        except RequestSheddedError as exc:
            self._count_status(429)
            return 429, (
                json_body(
                    {
                        "error": str(exc),
                        "reason": exc.reason,
                        "retry_after_s": exc.retry_after_s,
                    }
                ),
                {"Retry-After": str(max(1, math.ceil(exc.retry_after_s)))},
            )
        except Exception as exc:  # pragma: no cover - defensive
            self._count_status(500)
            return 500, (
                json_body({"error": f"{type(exc).__name__}: {exc}"}),
                None,
            )

    async def _route(self, request) -> tuple[int, tuple[bytes, dict | None]]:
        path = request.path
        if path == "/v1/detect":
            if request.method != "POST":
                return 405, (
                    json_body({"error": "use POST"}),
                    {"Allow": "POST"},
                )
            return await self._detect(request)
        if path == "/v1/models/swap":
            if request.method != "POST":
                return 405, (
                    json_body({"error": "use POST"}),
                    {"Allow": "POST"},
                )
            return await self._swap(request)
        if path == "/v1/models":
            if request.method in ("GET", "HEAD"):
                return 200, (json_body(self._models()), None)
        if request.method not in ("GET", "HEAD"):
            return 405, (json_body({"error": "use GET"}), {"Allow": "GET, HEAD"})
        if path == "/healthz":
            return 200, (json_body({"status": "ok"}), None)
        if path == "/readyz":
            if self.ready:
                return 200, (json_body({"status": "ready"}), None)
            state = "draining" if self._draining else "warming"
            return 503, (
                json_body({"status": state}),
                {"Retry-After": "1"},
            )
        if path == "/metrics":
            return self._metrics_response(request)
        if path == "/stats":
            return 200, (json_body(self._stats()), None)
        if path == "/debug/flight":
            return 200, (json_body(self._flight.snapshot()), None)
        return 404, (json_body({"error": f"no route {path!r}"}), None)

    def _metrics_response(self, request) -> tuple[int, tuple[bytes, dict | None]]:
        """``/metrics``, content-negotiated between JSON and Prometheus.

        ``?format=prom`` (or ``json``) wins; otherwise an ``Accept``
        header naming ``text/plain`` selects the Prometheus 0.0.4 text
        exposition.  Both render from the same snapshot call, so the two
        formats can never disagree within one scrape.
        """
        fmt = request.query.get("format")
        if fmt not in (None, "json", "prom"):
            raise BadRequestError(
                f"unknown metrics format {fmt!r}; use 'json' or 'prom'"
            )
        if fmt is None and "text/plain" in request.headers.get("accept", ""):
            fmt = "prom"
        snapshot = self._metrics.snapshot()
        if fmt == "prom":
            body = render_prometheus(snapshot).encode("utf-8")
            return 200, (body, {"Content-Type": PROM_CONTENT_TYPE})
        return 200, (json_body(snapshot), None)

    async def _detect(self, request) -> tuple[int, tuple[bytes, dict | None]]:
        """``POST /v1/detect`` — the single request choke point.

        Every outcome (200, shed, bad request, crash) flows through
        here, so the trace-id header, the request log event, and the
        flight-recorder entry are each emitted exactly once per request.
        """
        ctx = TraceContext.from_headers(request.headers)
        telemetry = RequestTelemetry(trace=ctx.trace_id)
        headers: dict = {TRACE_ID_HEADER: ctx.trace_id}
        start_pc = time.perf_counter()
        status = 500
        shed_reason: str | None = None
        error: str | None = None
        try:
            if not self.ready:
                state = "draining" if self._draining else "warming"
                shed_reason = state
                error = f"server is {state}"
                status = 503
                headers["Retry-After"] = "1"
                return 503, (
                    json_body({"error": error, "trace_id": ctx.trace_id}),
                    headers,
                )
            self._count_status(None)  # request seen
            ticket = self._admission.try_admit(
                self._batcher.queue_depth, trace=ctx.trace_id
            )
            try:
                luma = decode_frame(request)
                result = await self._batcher.submit(luma, ticket, telemetry)
                with self._tracer.span("serialize", cat="serve", trace=ctx.trace_id):
                    serialize_start = time.perf_counter()
                    payload = detections_payload(result)
                    telemetry.serialize_s = time.perf_counter() - serialize_start
                payload["trace_id"] = ctx.trace_id
                payload["timing"] = telemetry.timing()
                payload["model_version"] = result.model_version
                body = json_body(payload)
            finally:
                self._admission.release()
            status = 200
            self._count_status(200)
            return 200, (body, headers)
        except BadRequestError as exc:
            status = exc.status
            error = str(exc)
            self._count_status(status)
            return status, (
                json_body({"error": error, "trace_id": ctx.trace_id}),
                headers,
            )
        except RequestSheddedError as exc:
            # DeadlineExpiredError subclasses RequestSheddedError, so
            # queue-deadline expiry lands here too (reason "deadline")
            status = 429
            shed_reason = exc.reason
            error = str(exc)
            self._count_status(429)
            headers["Retry-After"] = str(max(1, math.ceil(exc.retry_after_s)))
            return 429, (
                json_body(
                    {
                        "error": error,
                        "reason": exc.reason,
                        "retry_after_s": exc.retry_after_s,
                        "trace_id": ctx.trace_id,
                    }
                ),
                headers,
            )
        except WorkerCrashError as exc:
            status = 500
            error = f"{type(exc).__name__}: {exc}"
            self._count_status(500)
            self._on_worker_crash(ctx, error)
            return 500, (
                json_body({"error": error, "trace_id": ctx.trace_id}),
                headers,
            )
        except Exception as exc:
            status = 500
            error = f"{type(exc).__name__}: {exc}"
            self._count_status(500)
            return 500, (
                json_body({"error": error, "trace_id": ctx.trace_id}),
                headers,
            )
        finally:
            latency_s = time.perf_counter() - start_pc
            self._log_request(ctx, status, latency_s, telemetry, shed_reason, error)

    async def _swap(self, request) -> tuple[int, tuple[bytes, dict | None]]:
        """``POST /v1/models/swap`` — zero-downtime model hot-swap.

        The reference comes from the JSON body (``{"model": "..."}``) or
        the ``model`` query parameter.  409 while another swap is in
        flight; zoo resolution failures map to a 400 and leave the
        serving model untouched.  ``/readyz`` stays green throughout —
        the old engine serves every batch until the flip lands.
        """
        from repro.errors import ZooError

        ref = request.query.get("model")
        if request.body:
            try:
                body = json.loads(request.body)
            except json.JSONDecodeError as exc:
                raise BadRequestError(f"swap body is not valid JSON: {exc}") from exc
            if not isinstance(body, dict):
                raise BadRequestError("swap body must be a JSON object")
            ref = body.get("model", ref)
        if not ref or not isinstance(ref, str):
            raise BadRequestError(
                "specify the target model: {\"model\": \"<ref>\"} or ?model=<ref>"
            )
        try:
            summary = await self._manager.swap(ref)
        except ZooError as exc:
            raise BadRequestError(str(exc)) from exc
        return 200, (
            json_body({"swapped": True, **summary, "model": self._manager.info()}),
            None,
        )

    def _models(self) -> dict:
        """``GET /v1/models`` — what's serving and what could serve."""
        from repro.zoo import RECIPES, default_store

        store = default_store()
        available: dict = {
            name: {"versions": [], "latest": None, "recipe": True}
            for name in sorted(RECIPES)
        }
        for model in store.models():
            entry = available.setdefault(
                model, {"versions": [], "latest": None, "recipe": False}
            )
            entry["versions"] = store.versions(model)
            entry["latest"] = store.latest(model)
        return {
            "current": self._manager.info() if self._manager else None,
            "available": available,
        }

    # ------------------------------------------------------------------
    # introspection

    def _count_status(self, status: int | None) -> None:
        if status is None:
            self._metrics.counter("serve.requests").inc()
        else:
            self._metrics.counter(f"serve.http.{status}").inc()

    def _lifecycle(self, phase: str, *, level: str = "info", **fields) -> None:
        """One lifecycle transition: structured log + flight-ring entry."""
        self._log.event("lifecycle", level=level, phase=phase, **fields)
        self._flight.record("lifecycle", phase=phase, **fields)

    def _log_request(
        self,
        ctx: TraceContext,
        status: int,
        latency_s: float,
        telemetry: RequestTelemetry,
        shed_reason: str | None,
        error: str | None,
    ) -> None:
        """Exactly one ``request`` event per ``/v1/detect`` request.

        The same field set lands on the structured log and in the flight
        ring, so the two can be cross-checked by trace id.
        """
        fields: dict = {
            "trace_id": ctx.trace_id,
            "status": status,
            "latency_s": round(latency_s, 6),
        }
        if telemetry.batch_size is not None:
            fields["batch_size"] = telemetry.batch_size
        if telemetry.worker is not None:
            fields["worker"] = telemetry.worker
        if telemetry.model_version is not None:
            fields["model_version"] = telemetry.model_version
        if telemetry.queue_wait_s is not None:
            fields["queue_wait_s"] = round(telemetry.queue_wait_s, 6)
        if shed_reason is not None:
            fields["shed_reason"] = shed_reason
        if error is not None:
            fields["error"] = error
        level = "info" if status < 400 else ("warning" if status < 500 else "error")
        self._log.event("request", level=level, **fields)
        self._flight.record("request", **fields)

    def _on_worker_crash(self, ctx: TraceContext, error: str) -> None:
        """A worker died under a request: record it, dump the ring."""
        self._lifecycle(
            "worker_crash", level="error", trace_id=ctx.trace_id, error=error
        )
        if self._config.flight_path is not None:
            self.dump_flight(reason="worker_crash")

    def _stats(self) -> dict:
        backend = self._pipeline.backend.name if self._pipeline else None
        snap = build_snapshot(
            self._metrics,
            self._tracer,
            backend=backend,
            device=self._pipeline.compute_device if self._pipeline else None,
            probe=self._pipeline.probe_report if self._pipeline else None,
            model=self._manager.info() if self._manager is not None else None,
        )
        snap["serve"] = {
            "model": self._manager.info() if self._manager is not None else None,
            "state": (
                "draining"
                if self._draining
                else ("ready" if self._ready.is_set() else "warming")
            ),
            "uptime_s": (
                time.perf_counter() - self._started_pc
                if self._started_pc is not None
                else 0.0
            ),
            "admission": self._admission.to_dict(),
            "batcher": {
                "max_batch": self._config.max_batch,
                "max_delay_s": self._config.max_delay_s,
                "queue_depth": self._batcher.queue_depth if self._batcher else 0,
            },
            "engine": {
                "workers": self._engine.workers if self._engine else 0,
                "sharding": self._engine.sharding.value if self._engine else None,
                "fastpath": (
                    self._pipeline.fastpath.policy.value if self._pipeline else None
                ),
                "device_batch": (
                    self._engine.batch_across_frames if self._engine else False
                ),
                "device_batch_size": (
                    self._engine.device_batch
                    if self._engine and self._engine.batch_across_frames
                    else None
                ),
            },
            "observability": {
                "log": {
                    "format": self._log.fmt,
                    "emitted": self._log.emitted,
                    "suppressed": self._log.suppressed,
                },
                "flight": {
                    "capacity": self._flight.capacity,
                    "recorded": self._flight.recorded,
                    "dropped": self._flight.dropped,
                },
            },
        }
        return snap


async def run_server(config: ServerConfig, *, ready_line: bool = True) -> None:
    """``repro serve``: start, announce, serve until SIGTERM/SIGINT."""
    server = DetectionServer(config)
    await server.start()
    server.install_signal_handlers()
    if ready_line:
        cfg = server.config
        print(
            f"repro serve: listening on http://{cfg.host}:{server.port} "
            f"(cascade={cfg.cascade}, workers={cfg.workers}, "
            f"max_batch={cfg.max_batch}, max_delay={cfg.max_delay_s * 1e3:.1f}ms)",
            flush=True,
        )
    await server.wait_closed()
