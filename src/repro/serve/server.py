"""The detection service: asyncio HTTP front end over the engine.

:class:`DetectionServer` owns the whole serving stack — one
:class:`~repro.detect.pipeline.FaceDetectionPipeline`, one
:class:`~repro.detect.engine.DetectionEngine`, one
:class:`~repro.serve.batcher.MicroBatcher`, one
:class:`~repro.serve.admission.AdmissionController` — and speaks the
protocol from :mod:`repro.serve.protocol` on a plain TCP listener.

Request lifecycle for ``POST /v1/detect`` (each stage is a span on the
shared tracer, so one Chrome trace shows network-to-network latency
next to the simulated kernel schedule):

    read request -> admit (or 429) -> decode frame -> queue_wait
    -> batch_form -> infer (engine batch) -> serialize -> write

Lifecycle endpoints:

* ``/healthz`` — liveness: 200 from the instant the listener binds;
* ``/readyz`` — readiness: 503 until warmup (one real frame through the
  engine, so first-request latency is never paying pool/workspace
  construction) and 503 again once a drain starts;
* ``/metrics`` — the raw metrics-registry snapshot as JSON;
* ``/stats`` — the full observability snapshot plus the serving block
  (admission counters, batcher config, lifecycle state).

Shutdown is a graceful drain: stop accepting, finish queued requests,
then tear down the engine.  A SIGTERM/SIGINT triggers the same path.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    BadRequestError,
    ConfigurationError,
    RequestSheddedError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import build_snapshot
from repro.obs.tracer import Tracer
from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import (
    decode_frame,
    detections_payload,
    encode_response,
    json_body,
    read_request,
)

__all__ = ["ServerConfig", "DetectionServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8035
    cascade: str = "quick"
    backend: str | None = None
    #: fast-path policy (``off`` | ``exact`` | ``fast``); ``None`` ->
    #: ``REPRO_FASTPATH`` or off.  Serving frames come from unrelated
    #: clients, so the engine runs with temporal reuse disabled either
    #: way — only the stateless proposal screen applies under ``fast``.
    fastpath: str | None = None
    workers: int = 1
    sharding: str = "threads"
    max_batch: int = 4
    max_delay_s: float = 0.005
    max_body_bytes: int = 8 * 1024 * 1024
    admission: AdmissionConfig = AdmissionConfig()
    #: frame side length used for the warmup frame
    warmup_side: int = 96
    trace: bool = False

    def validate(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.max_body_bytes < 1024:
            raise ConfigurationError(
                f"max_body_bytes must be >= 1024, got {self.max_body_bytes}"
            )
        self.admission.validate()


def _build_pipeline(
    cascade: str, backend: str | None, tracer: Tracer, fastpath: str | None = None
):
    from repro import zoo
    from repro.detect.pipeline import FaceDetectionPipeline, PipelineConfig

    cascades = {
        "quick": zoo.quick_cascade,
        "paper": zoo.paper_cascade,
        "opencv": zoo.opencv_like_cascade,
    }
    if cascade not in cascades:
        raise ConfigurationError(
            f"unknown cascade {cascade!r}; choose from {sorted(cascades)}"
        )
    return FaceDetectionPipeline(
        cascades[cascade](seed=0),
        config=PipelineConfig(backend=backend, fastpath=fastpath),
        tracer=tracer,
    )


class DetectionServer:
    """One serving instance: listener + admission + batcher + engine."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self._config = config or ServerConfig()
        self._config.validate()
        self._tracer = Tracer(enabled=self._config.trace)
        self._metrics = MetricsRegistry()
        self._admission = AdmissionController(
            self._config.admission, metrics=self._metrics
        )
        self._pipeline = None
        self._engine = None
        self._batcher: MicroBatcher | None = None
        # ONE infer thread: batches serialise through it in order, and
        # each dispatch is a single executor hop for the whole batch
        self._infer_pool: ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._ready = asyncio.Event()
        self._draining = False
        self._stopped = asyncio.Event()
        self._connections: set[asyncio.StreamWriter] = set()
        self._busy = 0
        self._idle_waiter: asyncio.Event = asyncio.Event()
        self._started_pc: float | None = None

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        if self._server is None:
            raise ConfigurationError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def ready(self) -> bool:
        return self._ready.is_set() and not self._draining

    async def start(self) -> None:
        """Bind the listener and warm up; returns once ready."""
        if self._server is not None:
            raise ConfigurationError("server is already started")
        from repro.detect.engine import DetectionEngine

        cfg = self._config
        self._pipeline = _build_pipeline(
            cfg.cascade, cfg.backend, self._tracer, fastpath=cfg.fastpath
        )
        self._engine = DetectionEngine(
            self._pipeline,
            workers=cfg.workers,
            sharding=cfg.sharding,
            tracer=self._tracer,
            metrics=self._metrics,
            # requests from different clients must never delta against
            # each other: temporal reuse off, proposal screen still on
            fastpath_stream=None,
        )
        self._infer_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-infer"
        )
        self._batcher = MicroBatcher(
            self._infer,
            max_batch=cfg.max_batch,
            max_delay_s=cfg.max_delay_s,
            executor=self._infer_pool,
            tracer=self._tracer,
            metrics=self._metrics,
        )
        self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, cfg.host, cfg.port
        )
        self._started_pc = time.perf_counter()
        # liveness is now green; readiness flips after the warmup frame
        await asyncio.get_running_loop().run_in_executor(
            self._infer_pool, self._warmup
        )
        self._ready.set()

    def _infer(self, lumas: list) -> list:
        return list(self._engine.process_frames(lumas))

    def _warmup(self) -> None:
        side = self._config.warmup_side
        frame = np.zeros((side, side), dtype=np.float32)
        list(self._engine.process_frames([frame]))
        self._metrics.counter("serve.warmup_frames").inc()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT start a graceful drain (idempotent)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.drain())
            )

    async def wait_closed(self) -> None:
        """Block until a drain completes."""
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: finish admitted work, then tear down.

        Kubernetes-style ordering: readiness flips to 503 *first* (so
        ``/readyz`` pollers and load balancers observe the drain while
        in-flight requests finish), new ``/v1/detect`` requests are
        refused with 503 + ``Retry-After``, and only once the last busy
        request completes does the listener close and the engine tear
        down.
        """
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True  # /readyz answers 503 from here on
        while self._busy > 0:
            self._idle_waiter.clear()
            await self._idle_waiter.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        if self._batcher is not None:
            await self._batcher.aclose()
        if self._engine is not None:
            self._engine.drain()
            self._engine.close()
        if self._infer_pool is not None:
            self._infer_pool.shutdown(wait=True)
        self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self._config.max_body_bytes
                    )
                except BadRequestError as exc:
                    self._count_status(exc.status)
                    writer.write(
                        encode_response(
                            exc.status,
                            json_body({"error": str(exc)}),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                # busy covers the response write too: a drain must not
                # close the connection between compute and flush
                self._busy += 1
                try:
                    status, payload = await self._respond(request)
                    keep_alive = request.keep_alive and not self._draining
                    writer.write(
                        encode_response(status, payload[0], keep_alive=keep_alive,
                                        extra_headers=payload[1])
                    )
                    await writer.drain()
                finally:
                    self._busy -= 1
                    if self._busy == 0:
                        self._idle_waiter.set()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _respond(self, request) -> tuple[int, tuple[bytes, dict | None]]:
        """Route one request; returns ``(status, (body, extra_headers))``."""
        try:
            return await self._route(request)
        except BadRequestError as exc:
            self._count_status(exc.status)
            return exc.status, (json_body({"error": str(exc)}), None)
        except RequestSheddedError as exc:
            self._count_status(429)
            return 429, (
                json_body(
                    {
                        "error": str(exc),
                        "reason": exc.reason,
                        "retry_after_s": exc.retry_after_s,
                    }
                ),
                {"Retry-After": str(max(1, math.ceil(exc.retry_after_s)))},
            )
        except Exception as exc:  # pragma: no cover - defensive
            self._count_status(500)
            return 500, (
                json_body({"error": f"{type(exc).__name__}: {exc}"}),
                None,
            )

    async def _route(self, request) -> tuple[int, tuple[bytes, dict | None]]:
        path = request.path
        if path == "/v1/detect":
            if request.method != "POST":
                return 405, (
                    json_body({"error": "use POST"}),
                    {"Allow": "POST"},
                )
            return await self._detect(request)
        if request.method not in ("GET", "HEAD"):
            return 405, (json_body({"error": "use GET"}), {"Allow": "GET, HEAD"})
        if path == "/healthz":
            return 200, (json_body({"status": "ok"}), None)
        if path == "/readyz":
            if self.ready:
                return 200, (json_body({"status": "ready"}), None)
            state = "draining" if self._draining else "warming"
            return 503, (
                json_body({"status": state}),
                {"Retry-After": "1"},
            )
        if path == "/metrics":
            return 200, (json_body(self._metrics.snapshot()), None)
        if path == "/stats":
            return 200, (json_body(self._stats()), None)
        return 404, (json_body({"error": f"no route {path!r}"}), None)

    async def _detect(self, request) -> tuple[int, tuple[bytes, dict | None]]:
        if not self.ready:
            state = "draining" if self._draining else "warming"
            return 503, (
                json_body({"error": f"server is {state}"}),
                {"Retry-After": "1"},
            )
        self._count_status(None)  # request seen
        ticket = self._admission.try_admit(self._batcher.queue_depth)
        try:
            luma = decode_frame(request)
            result = await self._batcher.submit(luma, ticket)
            with self._tracer.span("serialize", cat="serve"):
                body = json_body(detections_payload(result))
        finally:
            self._admission.release()
        self._count_status(200)
        return 200, (body, None)

    # ------------------------------------------------------------------
    # introspection

    def _count_status(self, status: int | None) -> None:
        if status is None:
            self._metrics.counter("serve.requests").inc()
        else:
            self._metrics.counter(f"serve.http.{status}").inc()

    def _stats(self) -> dict:
        backend = self._pipeline.backend.name if self._pipeline else None
        snap = build_snapshot(self._metrics, self._tracer, backend=backend)
        snap["serve"] = {
            "state": (
                "draining"
                if self._draining
                else ("ready" if self._ready.is_set() else "warming")
            ),
            "uptime_s": (
                time.perf_counter() - self._started_pc
                if self._started_pc is not None
                else 0.0
            ),
            "admission": self._admission.to_dict(),
            "batcher": {
                "max_batch": self._config.max_batch,
                "max_delay_s": self._config.max_delay_s,
                "queue_depth": self._batcher.queue_depth if self._batcher else 0,
            },
            "engine": {
                "workers": self._engine.workers if self._engine else 0,
                "sharding": self._engine.sharding.value if self._engine else None,
                "fastpath": (
                    self._pipeline.fastpath.policy.value if self._pipeline else None
                ),
            },
        }
        return snap


async def run_server(config: ServerConfig, *, ready_line: bool = True) -> None:
    """``repro serve``: start, announce, serve until SIGTERM/SIGINT."""
    server = DetectionServer(config)
    await server.start()
    server.install_signal_handlers()
    if ready_line:
        cfg = server.config
        print(
            f"repro serve: listening on http://{cfg.host}:{server.port} "
            f"(cascade={cfg.cascade}, workers={cfg.workers}, "
            f"max_batch={cfg.max_batch}, max_delay={cfg.max_delay_s * 1e3:.1f}ms)",
            flush=True,
        )
    await server.wait_closed()
