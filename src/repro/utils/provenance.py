"""Benchmark provenance: who produced this artifact, from what tree.

Bench trajectory points (``BENCH_throughput.json`` across PRs) are only
comparable when each one records the commit, time and environment that
produced it; :func:`provenance` gathers that best-effort — a missing
``git`` binary or a non-repo checkout degrades to ``"unknown"`` rather
than failing the benchmark.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

__all__ = ["git_sha", "provenance"]


def git_sha() -> str:
    """The HEAD commit of the tree this package runs from, or ``"unknown"``.

    ``REPRO_GIT_SHA`` (set by CI before an installed-package run)
    overrides the lookup.
    """
    import os

    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def provenance(
    backend: str | None = None,
    mode: str | None = None,
    device: str | None = None,
    probe: str | None = None,
) -> dict:
    """Environment fingerprint embedded in benchmark artifacts.

    ``backend`` records the active compute-backend name and ``mode`` the
    engine sharding mode, so trajectory points from different backends
    or executor kinds are never compared as one series.  ``device``
    records the compute device kind the backend resolved to and
    ``probe`` the one-line probe path that picked it (which candidates
    were skipped and why) — a ``cuda`` point and a ``cpu`` point of the
    same backend are different series too.  ``cpu_count`` rides along
    because sharded speedups are only interpretable against the core
    budget that produced them.
    """
    import os

    out = {
        "git_sha": git_sha(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "cpu_count": os.cpu_count() or 1,
    }
    if backend is not None:
        out["backend"] = backend
    if mode is not None:
        out["mode"] = mode
    if device is not None:
        out["device"] = device
    if probe is not None:
        out["probe"] = probe
    return out
