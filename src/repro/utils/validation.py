"""Small argument-validation helpers shared across the library.

These keep validation messages uniform and make precondition checks one-liners
at public API boundaries (hot inner loops do not call them).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["check_positive", "check_in_range", "check_shape_2d", "check_probability"]


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ConfigurationError` unless ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise :class:`ConfigurationError` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ConfigurationError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise :class:`ConfigurationError` unless ``0 <= value <= 1``."""
    check_in_range(name, value, 0.0, 1.0)


def check_shape_2d(name: str, array: np.ndarray) -> None:
    """Raise :class:`ConfigurationError` unless ``array`` is a non-empty 2-D array."""
    if not isinstance(array, np.ndarray) or array.ndim != 2 or array.size == 0:
        shape = getattr(array, "shape", None)
        raise ConfigurationError(f"{name} must be a non-empty 2-D ndarray, got shape {shape!r}")
