"""Shared utilities: deterministic RNG, timers, and table formatting."""

from repro.utils.rng import derive_seed, rng_for
from repro.utils.timing import WallTimer, format_duration
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_positive,
    check_in_range,
    check_shape_2d,
    check_probability,
)

__all__ = [
    "derive_seed",
    "rng_for",
    "WallTimer",
    "format_duration",
    "format_table",
    "check_positive",
    "check_in_range",
    "check_shape_2d",
    "check_probability",
]
