"""Deterministic random-number helpers.

All stochastic components of the library (synthetic faces, trailers, training
sets, decoder latency jitter) draw from named sub-streams derived from a
single root seed, so that every experiment is reproducible bit-for-bit while
independent components never share a stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "rng_for"]

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a path of names.

    The derivation hashes the textual path with SHA-256, so seeds are stable
    across platforms and Python versions (unlike ``hash()``).

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    names:
        Any sequence of hashable path components, e.g.
        ``derive_seed(7, "trailer", "fifty_fifty", frame_index)``.
    """
    text = repr(int(root_seed)) + "/" + "/".join(repr(n) for n in names)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & _MASK64


def rng_for(root_seed: int, *names: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for a named sub-stream."""
    return np.random.default_rng(derive_seed(root_seed, *names))
