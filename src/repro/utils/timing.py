"""Wall-clock timing helpers used by the training-scalability experiments.

Simulated GPU time comes from :mod:`repro.gpusim`; this module only measures
host wall time (e.g. for the Fig. 8 GentleBoost scaling study, which runs on
the host for real).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["WallTimer", "format_duration"]


@dataclass
class WallTimer:
    """A context-manager stopwatch accumulating elapsed wall seconds.

    Examples
    --------
    >>> t = WallTimer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None


def format_duration(seconds: float) -> str:
    """Render a duration with an appropriate unit (us/ms/s)."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds!r}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"
