"""Artifact caching for trained cascades and experiment outputs.

Cascade training is the reproduction's only expensive offline step (the
paper quotes days for the real thing); trained cascades are cached as JSON
under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-facedetect``) keyed by
name, so test and benchmark runs after the first are fast.

This flat cache predates the versioned model zoo (``repro.zoo.store``)
and remains for ad-hoc cascades (e.g. the soft-cascade ablation).  It no
longer silently trusts bare blobs: every load or store without a
manifest sidecar backfills ``<name>.manifest.json`` recording the
content digest, timestamp, and git SHA — so even pre-zoo artifacts carry
a provenance record and tampering is detectable.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["artifact_dir", "cached_cascade"]

_ENV_VAR = "REPRO_CACHE_DIR"


def artifact_dir() -> Path:
    """The cache directory (created on first use)."""
    root = os.environ.get(_ENV_VAR)
    path = Path(root) if root else Path.home() / ".cache" / "repro-facedetect"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _backfill_manifest(path: Path, cascade, *, source: str) -> None:
    """Write the ``<name>.manifest.json`` sidecar once per blob."""
    sidecar = path.with_suffix("").with_suffix(".manifest.json")
    if sidecar.exists():
        return
    from repro.utils.provenance import git_sha

    payload = json.dumps(cascade.to_dict(), sort_keys=True, separators=(",", ":"))
    sidecar.write_text(
        json.dumps(
            {
                "artifact": path.name,
                "name": cascade.name,
                "stages": cascade.num_stages,
                "weak_classifiers": cascade.num_weak_classifiers,
                "content_digest": "sha256:" + hashlib.sha256(payload.encode()).hexdigest(),
                "source": source,
                "git_sha": git_sha(),
                "created_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
            },
            indent=2,
        )
        + "\n"
    )


def cached_cascade(name: str, builder: Callable[[], "object"]):
    """Load cascade ``name`` from cache or build and store it.

    ``builder`` must return a :class:`repro.haar.cascade.Cascade`.  Cache
    files that fail to parse are rebuilt rather than crashing the caller.
    Blobs that predate manifest sidecars get one backfilled on first
    read (``source="backfilled"``).
    """
    from repro.errors import CascadeFormatError
    from repro.haar.cascade import Cascade

    path = artifact_dir() / f"{name}.cascade.json"
    if path.exists():
        try:
            cascade = Cascade.load(path)
        except CascadeFormatError:
            path.unlink()
        else:
            _backfill_manifest(path, cascade, source="backfilled")
            return cascade
    cascade = builder()
    cascade.save(path)
    _backfill_manifest(path, cascade, source="trained")
    return cascade
