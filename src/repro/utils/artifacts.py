"""Artifact caching for trained cascades and experiment outputs.

Cascade training is the reproduction's only expensive offline step (the
paper quotes days for the real thing); trained cascades are cached as JSON
under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-facedetect``) keyed by
name, so test and benchmark runs after the first are fast.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from pathlib import Path

__all__ = ["artifact_dir", "cached_cascade"]

_ENV_VAR = "REPRO_CACHE_DIR"


def artifact_dir() -> Path:
    """The cache directory (created on first use)."""
    root = os.environ.get(_ENV_VAR)
    path = Path(root) if root else Path.home() / ".cache" / "repro-facedetect"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cached_cascade(name: str, builder: Callable[[], "object"]):
    """Load cascade ``name`` from cache or build and store it.

    ``builder`` must return a :class:`repro.haar.cascade.Cascade`.  Cache
    files that fail to parse are rebuilt rather than crashing the caller.
    """
    from repro.errors import CascadeFormatError
    from repro.haar.cascade import Cascade

    path = artifact_dir() / f"{name}.cascade.json"
    if path.exists():
        try:
            return Cascade.load(path)
        except CascadeFormatError:
            path.unlink()
    cascade = builder()
    cascade.save(path)
    return cascade
