"""Plain-text table rendering for benchmark reports.

The benchmark harness prints paper-style tables (e.g. Table II) to stdout so
``pytest benchmarks/ --benchmark-only -s`` output can be compared against the
paper directly.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def _cell(value: object, width: int, numeric: bool) -> str:
    text = value if isinstance(value, str) else _render(value)
    return text.rjust(width) if numeric else text.ljust(width)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Format ``rows`` under ``headers`` as an aligned monospace table.

    Columns whose body cells are all numeric are right-aligned. Raises
    :class:`ValueError` on ragged rows so formatting bugs fail loudly.
    """
    ncol = len(headers)
    for i, row in enumerate(rows):
        if len(row) != ncol:
            raise ValueError(f"row {i} has {len(row)} cells, expected {ncol}")
    rendered = [[_render(c) for c in row] for row in rows]
    numeric_col = [
        all(isinstance(row[j], (int, float)) and not isinstance(row[j], bool) for row in rows)
        if rows
        else False
        for j in range(ncol)
    ]
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in rendered)) if rendered else len(headers[j])
        for j in range(ncol)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(headers[j].ljust(widths[j]) for j in range(ncol)))
    lines.append("  ".join("-" * widths[j] for j in range(ncol)))
    for orig, row in zip(rows, rendered):
        lines.append(
            "  ".join(_cell(row[j], widths[j], numeric_col[j]) for j in range(ncol))
        )
    return "\n".join(lines)
