"""Setup shim.

The execution environment has no ``wheel`` package (and no network), so PEP
660 editable installs (``pip install -e .``) cannot build. This shim lets
``python setup.py develop`` / legacy editable installs work offline.
"""

from setuptools import setup

setup()
