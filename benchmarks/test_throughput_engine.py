"""Wall-clock throughput benchmark: batched engine vs serial loop.

Asserts the tentpole claim: on >= 8 synthetic quarter-1080p frames with
>= 4 workers, the batched :class:`~repro.detect.engine.DetectionEngine`
sustains >= 1.5x the wall-clock fps of a naive ``process_frame`` loop,
with byte-identical detections.  Writes the ``BENCH_throughput.json``
artifact that CI uploads.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the
workload and skip the fps-ratio assertion — shared CI runners do not
provide stable enough wall clocks for a ratio gate, so smoke mode checks
the machinery (identity, artifact schema) and leaves the perf gate to
the full local run.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.throughput import run_throughput

pytestmark = pytest.mark.bench

#: quarter-1080p geometry (1920x1080 / 4 per axis)
_WIDTH, _HEIGHT = 480, 270


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_OUTPUT", "BENCH_throughput.json"))


def test_throughput_engine(report):
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    result = run_throughput(
        frames=8 if smoke else 12,
        workers=4,
        width=_WIDTH,
        height=_HEIGHT,
        trials=2 if smoke else 3,
        cascade="quick" if smoke else "paper",
    )
    report(result.format_table())

    path = result.write_json(_artifact_path())
    payload = json.loads(path.read_text())
    assert payload["experiment"] == "throughput"
    assert payload["frames"] == result.frames
    assert payload["batch_report"]["frames"] == result.frames
    assert payload["batch_report"]["simulated_fps"] > 0

    # provenance: bench trajectory points must be comparable across PRs,
    # and points from different compute backends must stay separate series
    assert payload["schema_version"] == 2
    prov = payload["provenance"]
    assert {"git_sha", "timestamp_utc", "python", "numpy", "platform"} <= set(prov)
    assert payload["backend"] == result.backend
    assert prov["backend"] == result.backend
    assert payload["workers"] == 4
    assert (payload["frame_width"], payload["frame_height"]) == (_WIDTH, _HEIGHT)

    # the embedded observability snapshot of the instrumented pass
    metrics = payload["metrics"]
    assert metrics["backend"]["active"] == result.backend
    assert result.backend in metrics["backend"]["registered"]
    assert metrics["counters"]["engine.frames"] == result.frames
    assert metrics["histograms"]["engine.frame_latency_s"]["count"] == result.frames
    assert metrics["histograms"]["engine.frame_latency_s"]["p95"] > 0
    assert metrics["stage_busy_seconds"]["cascade"] > 0
    assert metrics["max_queue_depth"] >= 1

    # functional identity is non-negotiable in every mode
    assert result.identical, "batched detections differ from serial ones"
    assert result.workers >= 4
    assert result.frames >= 8

    if not smoke:
        assert result.speedup >= 1.5, (
            f"batched engine reached only {result.speedup:.2f}x serial fps "
            f"(serial {result.serial_fps:.2f} fps, batched {result.batched_fps:.2f} fps)"
        )
