"""Wall-clock throughput benchmark: sharded engine vs serial loop.

Asserts the tentpole claims: on >= 8 synthetic quarter-1080p frames with
>= 4 workers the thread-sharded :class:`~repro.detect.engine.
DetectionEngine` sustains >= 1.5x the wall-clock fps of a naive
``process_frame`` loop, and on a host with >= 4 cores the
process-sharded engine sustains >= 3.0x — both with byte-identical
detections.  Writes the ``BENCH_throughput.json`` artifact that CI
uploads.

Knobs (all environment variables, the CI jobs set them):

* ``REPRO_BENCH_SMOKE=1`` — shrink the workload and skip the fps-ratio
  gates; shared CI runners do not provide stable enough wall clocks for
  a ratio gate, so smoke mode checks the machinery (identity, artifact
  schema, all three timed paths) and leaves the perf gates to the full
  local run.
* ``REPRO_BENCH_MODE`` — primary sharding mode for the headline speedup
  (``threads`` default; the process smoke job sets ``processes``).
* ``REPRO_BENCH_OUTPUT`` — artifact path (mode-tagged in CI so the
  thread and process artifacts upload side by side).
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.throughput import BENCH_SCHEMA_VERSION, run_throughput

pytestmark = pytest.mark.bench

#: quarter-1080p geometry (1920x1080 / 4 per axis)
_WIDTH, _HEIGHT = 480, 270


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_OUTPUT", "BENCH_throughput.json"))


def test_throughput_engine(report):
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    mode = os.environ.get("REPRO_BENCH_MODE", "threads")
    result = run_throughput(
        frames=8 if smoke else 12,
        workers=4,
        width=_WIDTH,
        height=_HEIGHT,
        trials=2 if smoke else 3,
        warmup=0 if smoke else 1,
        cascade="quick" if smoke else "paper",
        mode=mode,
    )
    report(result.format_table())

    path = result.write_json(_artifact_path())
    payload = json.loads(path.read_text())
    assert payload["experiment"] == "throughput"
    assert payload["frames"] == result.frames
    assert payload["batch_report"]["frames"] == result.frames
    assert payload["batch_report"]["simulated_fps"] > 0

    # provenance: bench trajectory points must be comparable across PRs,
    # and points from different compute backends / sharding modes must
    # stay separate series
    assert payload["schema_version"] == BENCH_SCHEMA_VERSION
    prov = payload["provenance"]
    assert {
        "git_sha", "timestamp_utc", "python", "numpy", "platform", "cpu_count"
    } <= set(prov)
    assert payload["backend"] == result.backend
    assert prov["backend"] == result.backend
    assert prov["mode"] == payload["mode"] == result.mode
    assert payload["mode"] in ("threads", "processes")  # auto resolves
    assert payload["workers"] == 4
    assert (payload["frame_width"], payload["frame_height"]) == (_WIDTH, _HEIGHT)

    # all three paths are timed every run, with per-round data and
    # median + IQR scoring (variance is a tracked quantity, not noise)
    modes = payload["modes"]
    for name in ("serial", "threads", "processes"):
        stats = modes[name]
        assert len(stats["rounds_s"]) == result.trials
        assert len(stats["warmup_rounds_s"]) == result.warmup
        assert stats["median_s"] > 0
        assert stats["iqr_s"] >= 0
        assert stats["fps"] > 0
    assert modes["threads"]["speedup"] > 0
    assert modes["processes"]["speedup"] > 0

    # the embedded observability snapshot of the instrumented pass
    metrics = payload["metrics"]
    assert metrics["backend"]["active"] == result.backend
    assert result.backend in metrics["backend"]["registered"]
    assert metrics["counters"]["engine.frames"] == result.frames
    assert metrics["histograms"]["engine.frame_latency_s"]["count"] == result.frames
    assert metrics["histograms"]["engine.frame_latency_s"]["p95"] > 0
    assert metrics["stage_busy_seconds"]["cascade"] > 0
    assert metrics["max_queue_depth"] >= 1

    # functional identity is non-negotiable in every mode
    assert result.identical, (
        f"sharded detections differ from serial ones: {result.identity}"
    )
    assert result.workers >= 4
    assert result.frames >= 8

    # the speedup gates are meaningful only where the cores exist — even
    # GIL-released NumPy regions need a second core to overlap onto; a
    # 1-core container runs every path for identity and schema but
    # cannot speak to scaling
    if not smoke:
        if (os.cpu_count() or 1) >= 2:
            assert result.speedup_of("threads") >= 1.5, (
                f"thread-sharded engine reached only "
                f"{result.speedup_of('threads'):.2f}x serial fps "
                f"(serial {result.serial_fps:.2f} fps)"
            )
        if (os.cpu_count() or 1) >= 4:
            assert result.speedup_of("processes") >= 3.0, (
                f"process-sharded engine reached only "
                f"{result.speedup_of('processes'):.2f}x serial fps on a "
                f"{os.cpu_count()}-core host"
            )
