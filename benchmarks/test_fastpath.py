"""Fast-path benchmark: pruning + delta cache vs the exact baseline.

Drives :func:`~repro.experiments.fastpath.run_fastpath` over a synthetic
Table II trailer stream (held-frame pulldown cadence) and asserts the
fast-path tentpole: ``exact`` is byte-identical to the baseline on cold
and warm passes, and ``fast`` sustains >= 1.3x the baseline wall clock
at >= 0.99 recall vs ``exact``.  Writes the ``BENCH_fastpath.json``
artifact that CI uploads.

Knobs (environment variables, the CI jobs set them):

* ``REPRO_BENCH_SMOKE=1`` — shrink the workload and skip the
  speedup/recall gates; shared CI runners do not provide stable enough
  wall clocks for a ratio gate, so smoke mode checks the machinery
  (exact identity, artifact schema, counter accounting) and leaves the
  perf gates to the full local run.
* ``REPRO_BENCH_OUTPUT`` — artifact path (default ``BENCH_fastpath.json``).
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.fastpath import FASTPATH_BENCH_SCHEMA_VERSION, run_fastpath

pytestmark = pytest.mark.bench


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_OUTPUT", "BENCH_fastpath.json"))


def test_fastpath_speedup(report):
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    result = run_fastpath(
        trailer="50/50",
        frames=12 if smoke else 24,
        width=256 if smoke else 320,
        height=192 if smoke else 240,
        trials=2 if smoke else 3,
        # warmup stays >= 1 even in smoke mode: the first pass builds the
        # plans and populates the temporal caches, and timing it would
        # skew the smoke rounds the accounting assertions read
        warmup=1,
        cascade="quick",
    )
    report(result.format_table())

    path = result.write_json(_artifact_path())
    payload = json.loads(path.read_text())
    assert payload["experiment"] == "fastpath"
    assert payload["schema_version"] == FASTPATH_BENCH_SCHEMA_VERSION

    # provenance: fast-path trajectory points must be comparable across
    # PRs and separable by backend
    prov = payload["provenance"]
    assert {
        "git_sha", "timestamp_utc", "python", "numpy", "platform", "cpu_count"
    } <= set(prov)
    assert prov["backend"] == payload["backend"] == result.backend

    # all three policies are timed every run, median + IQR scored
    policies = payload["policies"]
    for name in ("off", "exact", "fast"):
        stats = policies[name]
        assert len(stats["rounds_s"]) == result.trials
        assert len(stats["warmup_rounds_s"]) == result.warmup
        assert stats["median_s"] > 0
        assert stats["iqr_s"] >= 0
        assert stats["fps"] > 0
    assert policies["exact"]["speedup"] > 0
    assert policies["fast"]["speedup"] > 0
    assert payload["speedup"] == policies["fast"]["speedup"] > 0
    assert payload["speedup_vs_exact"] > 0
    assert payload["hold"] == result.hold

    # exact-mode byte identity is non-negotiable, cold cache and warm
    assert result.identical_exact, (
        f"exact fast path diverged from the baseline: {result.identity}"
    )

    # counter accounting: the delta cache must actually be reusing work
    # on a warm trailer stream (backgrounds are bit-stable within scenes)
    fast_stats = payload["fast_stats"]
    assert fast_stats["anchors"] > 0
    assert fast_stats["anchors_evaluated"] < fast_stats["anchors"]
    assert fast_stats["anchors_carried"] > 0
    # held frames are bit-identical repeats: whole-frame reuse must fire
    assert fast_stats["frames_reused"] > 0
    assert (
        fast_stats["anchors_evaluated"]
        + fast_stats["anchors_carried"]
        + fast_stats["anchors_pruned"]
        <= fast_stats["anchors"]
    )
    # exact never prunes: every anchor is either evaluated or carried
    # from a bit-identical predecessor
    exact_stats = payload["exact_stats"]
    assert exact_stats["anchors_pruned"] == 0
    assert (
        exact_stats["anchors_evaluated"] + exact_stats["anchors_carried"]
        == exact_stats["anchors"]
    )
    assert 0.0 <= exact_stats["proposal_recall"] <= 1.0

    # the embedded observability snapshot of the instrumented fast pass
    metrics = payload["metrics"]
    assert metrics["counters"]["fastpath.frames"] == result.total_frames
    assert metrics["counters"]["fastpath.anchors"] > 0
    assert "fastpath_evaluated_fraction" in metrics

    # wall-clock gates only where they are meaningful: the full local
    # run, not a shared smoke runner
    if not smoke:
        assert payload["recall"] >= 0.99, (
            f"fast policy recall {payload['recall']:.4f} vs exact"
        )
        assert payload["speedup"] >= 1.3, (
            f"fast policy reached only {payload['speedup']:.2f}x the baseline "
            f"wall clock at recall {payload['recall']:.4f}"
        )
