"""Observability overhead bound: the traced-and-logged serving path must
stay within 5 % wall clock of the silent path.

Extends the PR 2 tracing gate (``test_trace_overhead.py``) to the full
serving stack: two live :class:`~repro.serve.server.DetectionServer`
instances on loopback — one silent (tracer off, request logs filtered
below ``error``), one fully observed (spans on, JSON request logs, flight
recorder) — driven by identical closed-loop loadtests in alternating
trials, scoring each path's minimum wall clock.  Alongside the ratio it
re-checks two invariants that must hold in *every* mode:

* exactly-once request accounting — JSON log lines with
  ``"event": "request"`` (plus any rate-limit ``suppressed`` carry-overs)
  match the number of requests sent;
* identical detections — observability must never change answers.

Writes ``BENCH_log_overhead.json`` for ``repro bench check`` (schema +
baseline under ``benchmarks/baselines/log_overhead.json``).

``REPRO_BENCH_SMOKE=1`` shrinks the workload and skips the ratio gate
(shared CI runners have no stable wall clock), as do single-core hosts
(everything contends on one interpreter, so wall clocks spread far wider
than the bound); the accounting and identity assertions always run.
``REPRO_BENCH_OUTPUT`` overrides the artifact path.
"""

import asyncio
import io
import json
import os
import time
from pathlib import Path

import pytest

from repro.serve.loadgen import _Connection, build_payloads, run_loadtest
from repro.serve.server import DetectionServer, ServerConfig
from repro.utils.provenance import provenance

pytestmark = pytest.mark.bench

#: ``BENCH_log_overhead.json`` schema: 1 is the initial silent-vs-observed
#: comparison with exactly-once accounting and a detection-identity verdict
BENCH_LOG_OVERHEAD_SCHEMA_VERSION = 1

_MAX_OVERHEAD = 0.05


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_OUTPUT", "BENCH_log_overhead.json"))


def _config(*, observed: bool, workers: int) -> ServerConfig:
    return ServerConfig(
        port=0,
        cascade="quick",
        workers=workers,
        sharding="threads",
        max_batch=4,
        max_delay_s=0.002,
        trace=observed,
        log_format="json",
        # the silent path keeps the logger wired but filters request/
        # lifecycle events (info) out, which is how a quiet production
        # deployment would run it
        log_level="info" if observed else "error",
    )


async def _detections_of(port: int, payload: tuple[bytes, str]) -> list:
    conn = _Connection("127.0.0.1", port)
    try:
        body, content_type = payload
        status, raw = await conn.request("POST", "/v1/detect", body, content_type)
        assert status == 200
        decoded = json.loads(raw)
        return [decoded["detections"], decoded["raw_count"]]
    finally:
        conn.close()


async def _drive(
    *, payloads: list, requests: int, concurrency: int, trials: int, workers: int
) -> dict:
    silent_stream, observed_stream = io.StringIO(), io.StringIO()
    silent = DetectionServer(
        _config(observed=False, workers=workers), log_stream=silent_stream
    )
    observed = DetectionServer(
        _config(observed=True, workers=workers), log_stream=observed_stream
    )
    await silent.start()
    await observed.start()
    try:
        # observability must not change answers
        identical = await _detections_of(
            silent.port, payloads[0]
        ) == await _detections_of(observed.port, payloads[0])

        # warm both servers past connection/batcher cold start
        await run_loadtest(
            "127.0.0.1", silent.port, requests=concurrency,
            concurrency=concurrency, payloads=payloads,
        )
        await run_loadtest(
            "127.0.0.1", observed.port, requests=concurrency,
            concurrency=concurrency, payloads=payloads,
        )

        silent_walls, observed_walls = [], []
        silent_result = observed_result = None
        for _ in range(trials):
            start = time.perf_counter()
            silent_result = await run_loadtest(
                "127.0.0.1", silent.port, requests=requests,
                concurrency=concurrency, payloads=payloads,
            )
            silent_walls.append(time.perf_counter() - start)

            start = time.perf_counter()
            observed_result = await run_loadtest(
                "127.0.0.1", observed.port, requests=requests,
                concurrency=concurrency, payloads=payloads,
            )
            observed_walls.append(time.perf_counter() - start)

        emitted, suppressed = observed.log.emitted, observed.log.suppressed
    finally:
        await silent.drain()
        await observed.drain()

    records = [
        json.loads(line)
        for line in observed_stream.getvalue().splitlines()
        if '"event": "request"' in line
    ]
    sent = 1 + concurrency + trials * requests  # identity probe + warmup + trials
    logged = len(records) + sum(r.get("suppressed", 0) for r in records)
    return {
        "identical": identical,
        "silent_walls": silent_walls,
        "observed_walls": observed_walls,
        "silent_result": silent_result,
        "observed_result": observed_result,
        "sent": sent,
        "log_lines": len(records),
        "logged": logged,
        "emitted": emitted,
        "suppressed": suppressed,
    }


def test_log_overhead_bounded(report):
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    requests = 16 if smoke else 64
    concurrency = 4
    trials = 2 if smoke else 3
    workers = min(2, os.cpu_count() or 1)

    payloads = build_payloads(
        width=96, height=96, frames=4, faces=1, seed=0
    )
    out = asyncio.run(
        _drive(
            payloads=payloads, requests=requests, concurrency=concurrency,
            trials=trials, workers=workers,
        )
    )

    assert out["identical"], "observability changed the detections"

    # exactly-once accounting: the observed server logged every request
    # it was sent, with rate-limit suppression explicitly carried
    exactly_once = out["logged"] == out["sent"]
    assert exactly_once, (
        f"observed path logged {out['logged']} requests "
        f"(of which {out['log_lines']} lines) but {out['sent']} were sent"
    )

    for name in ("silent_result", "observed_result"):
        result = out[name]
        assert result.errors == 0, f"{name} loadtest errored: {result.errors}"
        assert result.ok == requests, f"{name} loadtest shed under bench load"

    best_silent = min(out["silent_walls"])
    best_observed = min(out["observed_walls"])
    overhead = best_observed / best_silent - 1.0
    report(
        f"log overhead — {trials}x{requests} requests at concurrency "
        f"{concurrency}, {workers} workers: silent {best_silent:.3f}s, "
        f"observed {best_observed:.3f}s ({overhead * 100.0:+.2f}%)"
    )

    artifact = {
        "experiment": "log_overhead",
        "schema_version": BENCH_LOG_OVERHEAD_SCHEMA_VERSION,
        "provenance": provenance(mode="threads"),
        "workload": {
            "frame_width": 96,
            "frame_height": 96,
            "payload_frames": 4,
            "requests": requests,
            "concurrency": concurrency,
            "trials": trials,
            "workers": workers,
            "max_batch": 4,
        },
        "runs": {
            "silent": {
                "walls_s": out["silent_walls"],
                "best_wall_s": best_silent,
                "rps": out["silent_result"].rps,
                "ok": out["silent_result"].ok,
            },
            "observed": {
                "walls_s": out["observed_walls"],
                "best_wall_s": best_observed,
                "rps": out["observed_result"].rps,
                "ok": out["observed_result"].ok,
                "log_lines": out["log_lines"],
                "emitted": out["emitted"],
                "suppressed": out["suppressed"],
            },
        },
        "overhead": overhead,
        "max_overhead": _MAX_OVERHEAD,
        "accounting": {
            "requests_sent": out["sent"],
            "requests_logged": out["logged"],
            "exactly_once": exactly_once,
            "identical_detections": out["identical"],
        },
    }
    path = _artifact_path()
    path.write_text(json.dumps(artifact, indent=2) + "\n")

    payload = json.loads(path.read_text())
    assert payload["experiment"] == "log_overhead"
    assert payload["schema_version"] == BENCH_LOG_OVERHEAD_SCHEMA_VERSION
    assert {
        "git_sha", "timestamp_utc", "python", "numpy", "platform", "cpu_count"
    } <= set(payload["provenance"])
    assert payload["accounting"]["exactly_once"] is True
    assert payload["accounting"]["identical_detections"] is True

    # like the serving speedup gate, the ratio is only meaningful where
    # the cores exist: on a single-core host every request contends on
    # the one interpreter and wall clocks spread 10-20% run to run, so a
    # 5% bound would gate on scheduler noise rather than instrumentation
    if not smoke and (os.cpu_count() or 1) >= 2:
        assert overhead < _MAX_OVERHEAD, (
            f"tracing + structured logging costs {overhead * 100.0:.1f}% "
            f"serving wall-clock (bound: {_MAX_OVERHEAD * 100.0:.0f}%)"
        )
