"""Device-batch benchmark: cross-frame launch fusion vs per-frame dispatch.

Drives :func:`~repro.experiments.devicebatch.run_devicebatch` over one
synthetic trailer and asserts the device-batch tentpole: detections are
byte-identical at every batch width, the transfer accounting closes
(``transfers + transfers_saved`` equals the width-1 crossing count), and
the per-frame amortised wall clock improves monotonically from width 1
to 8, reaching >= 1.2x at width 8.  Writes the ``BENCH_devicebatch.json``
artifact that CI uploads and ``repro bench check`` validates.

Knobs (environment variables, the CI jobs set them):

* ``REPRO_BENCH_SMOKE=1`` — shrink the workload and skip the wall-clock
  gates; shared CI runners do not provide stable enough wall clocks for
  a ratio gate, so smoke mode checks the machinery (byte identity,
  artifact schema, transfer accounting) and leaves the perf gates to
  the full local run.
* ``REPRO_BENCH_OUTPUT`` — artifact path (default
  ``BENCH_devicebatch.json``).
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.devicebatch import (
    DEVICEBATCH_BENCH_SCHEMA_VERSION,
    run_devicebatch,
)

pytestmark = pytest.mark.bench


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_OUTPUT", "BENCH_devicebatch.json"))


def test_devicebatch_amortisation(report):
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    result = run_devicebatch(
        trailer="50/50",
        frames=16 if smoke else 48,
        width=96,
        height=96,
        batch_sizes=(1, 4, 8) if smoke else (1, 4, 8, 16),
        trials=2 if smoke else 3,
        warmup=1,
        cascade="quick",
    )
    report(result.format_table())

    path = result.write_json(_artifact_path())
    payload = json.loads(path.read_text())
    assert payload["experiment"] == "devicebatch"
    assert payload["schema_version"] == DEVICEBATCH_BENCH_SCHEMA_VERSION

    prov = payload["provenance"]
    assert {
        "git_sha", "timestamp_utc", "python", "numpy", "platform", "cpu_count"
    } <= set(prov)
    assert prov["backend"] == payload["backend"] == result.backend
    assert payload["warmup"] == 1

    # every width is timed every run, median + IQR scored, and reports
    # its own accounting columns
    batches = payload["batches"]
    assert set(batches) == {str(b) for b in result.batch_sizes}
    for b in result.batch_sizes:
        stats = batches[str(b)]
        assert len(stats["rounds_s"]) == result.trials
        assert len(stats["warmup_rounds_s"]) == result.warmup
        assert stats["median_s"] > 0
        assert stats["per_frame_ms"] > 0
        assert stats["speedup_vs_1"] > 0
        assert stats["batched_frames"] == result.frames
        assert stats["transfers"] > 0
    assert batches["1"]["speedup_vs_1"] == 1.0

    # byte identity across widths is non-negotiable: the fused kernels
    # are elementwise over stacked lanes, not an approximation
    assert payload["identical_detections"], "device batching changed detections"

    # transfer accounting: width 1 crosses per frame and fuses nothing;
    # wider batches must cross once per site per batch, and the saved
    # column must close the books exactly
    assert payload["transfer_accounting_ok"]
    assert batches["1"]["fused_batches"] == 0
    assert batches["1"]["transfers_saved"] == 0
    for b in result.batch_sizes:
        if b > 1:
            assert batches[str(b)]["fused_batches"] > 0
            assert batches[str(b)]["transfers_saved"] > 0
            assert batches[str(b)]["transfers"] < batches["1"]["transfers"]

    # the embedded observability snapshot of the widest instrumented pass
    metrics = payload["metrics"]
    assert metrics["counters"]["engine.batched_frames"] == result.frames
    assert metrics["batching"]["device_batches"] >= 1
    assert metrics["batching"]["batch_size_max"] <= max(result.batch_sizes)

    # wall-clock gates only where they are meaningful: the full local
    # run, not a shared smoke runner
    if not smoke:
        assert payload["monotonic_1_to_8"], (
            "per-frame wall clock did not improve monotonically 1->8: "
            + str({b: round(batches[str(b)]["per_frame_ms"], 3) for b in result.batch_sizes})
        )
        assert batches["8"]["speedup_vs_1"] >= 1.2, (
            f"batch 8 reached only {batches['8']['speedup_vs_1']:.2f}x the "
            f"per-frame baseline"
        )
