"""Fig. 8: GentleBoost single-iteration time vs thread count."""

from repro.experiments.fig8 import run_fig8
from repro.gpusim.device import XEON_HOST_DUAL_E5472, XEON_HOST_I7_2600K


def test_fig8_training_scalability(benchmark, profile, report):
    result = benchmark.pedantic(run_fig8, args=(profile,), rounds=1, iterations=1)
    report(result.format_table())

    i7 = XEON_HOST_I7_2600K.name
    xeon = XEON_HOST_DUAL_E5472.name
    for platform in (i7, xeon):
        curve = result.curves[platform]
        times = [curve[t] for t in sorted(curve)]
        # monotone non-increasing in thread count
        for a, b in zip(times, times[1:]):
            assert b <= a * 1.0001
        # paper: "close to 3.5X in both scenarios ... with 8 threads"
        assert 3.0 <= result.speedup(platform, 8) <= 4.0

    # paper: the i7-2600K outperformed the dual Xeon ~2x on average
    ratio = result.curves[xeon][1] / result.curves[i7][1]
    assert 1.8 <= ratio <= 2.2

    # the parallel loops dominate the iteration (OpenMP region >> serial)
    assert result.timing.parallel_fraction > 0.9
