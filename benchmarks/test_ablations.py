"""Section VI micro-statistics and design-choice ablations.

One benchmark per claim in the paper's prose, plus the design ablations
DESIGN.md calls out (window strategy, feature encoding, integral paths).
"""

from repro.experiments.ablations import (
    run_divergence,
    run_dram_throughput,
    run_encoding_ablation,
    run_end_to_end_fps,
    run_integral_paths,
    run_pipeline_breakdown,
    run_window_strategy,
)


def test_ablation_divergence(benchmark, profile, report):
    """Paper: 98.9 % of branches non-divergent in the cascade kernel."""
    result = benchmark.pedantic(run_divergence, args=(profile,), rounds=1, iterations=1)
    report(result.format_summary())
    assert result.branches > 0
    # adjacent windows mostly exit at the same stage, so warps rarely split
    assert result.branch_efficiency >= 0.97


def test_ablation_pipeline_breakdown(benchmark, profile, report):
    """Paper: integral-image kernels ~20 % of total detection time."""
    result = benchmark.pedantic(
        run_pipeline_breakdown, args=(profile,), rounds=1, iterations=1
    )
    report(result.format_table())
    assert 0.05 <= result.integral_fraction <= 0.40
    # the cascade evaluation kernel dominates (the paper's premise)
    assert result.cascade_fraction > result.integral_fraction


def test_ablation_dram_throughput(benchmark, profile, report):
    """Paper: 9.57-532 MB/s DRAM read throughput across scale kernels."""
    result = benchmark.pedantic(
        run_dram_throughput, args=(profile,), rounds=1, iterations=1
    )
    report(result.format_summary())
    # low absolute throughput (integral tiles are L2-resident and staged
    # through shared memory, so the cascade kernel barely touches DRAM),
    # spanning a wide range across the per-scale kernels
    assert result.min_mbps < 300
    assert result.max_mbps < 3000
    assert result.max_mbps / max(result.min_mbps, 1e-9) > 3


def test_ablation_end_to_end_fps(benchmark, profile, report):
    """Paper: 70 fps at 1080p with decode (8-10 ms) overlapped."""
    result = benchmark.pedantic(
        run_end_to_end_fps, args=(profile,), rounds=1, iterations=1
    )
    report(result.format_summary())
    # overlapping decode with detection beats serialising them
    assert result.fps_pipelined > result.fps_serialised
    assert result.fps_pipelined > 20.0


def test_ablation_feature_encoding(benchmark, report):
    """Section III-C: packed 16-bit features fit constant memory; raw don't."""
    result = benchmark.pedantic(run_encoding_ablation, rounds=1, iterations=1)
    report(result.format_summary())
    assert result.fits_packed
    assert not result.fits_raw
    assert result.raw_bytes / result.packed_bytes > 3.0
    # quantisation is essentially free in accuracy terms
    assert result.depth_agreement >= 0.98


def test_ablation_window_strategy(benchmark, profile, report):
    """Fig. 2: variable-sized windows collapse GPU occupancy."""
    result = benchmark.pedantic(
        run_window_strategy, args=(profile,), rounds=1, iterations=1
    )
    report(result.format_table())
    # the fixed-window pyramid keeps the device near its occupancy ceiling
    # (the cascade kernel itself is register-limited at ~0.83)
    assert result.fixed_occupancy > 0.8
    # big variable windows leave almost everything idle
    assert result.collapse_ratio < 0.3
    # occupancy decays monotonically with window size
    occ = [v for _, v in sorted(result.variable_occupancy.items())]
    assert occ == sorted(occ, reverse=True)


def test_ablation_integral_paths(benchmark, report):
    """Ref [23]: CPU wins at small images, GPU at high resolution."""
    result = benchmark.pedantic(run_integral_paths, rounds=1, iterations=1)
    report(result.format_table())
    assert result.gpu_wins_at_high_resolution
    assert result.speedup_grows_with_resolution
