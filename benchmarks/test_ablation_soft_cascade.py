"""Soft-cascade ablation (the paper's Section VII future work)."""

from repro.experiments.soft_cascade_ablation import run_soft_cascade_ablation


def test_ablation_soft_cascade(benchmark, profile, report):
    result = benchmark.pedantic(
        run_soft_cascade_ablation, args=(profile,), rounds=1, iterations=1
    )
    report(result.format_table())

    # finer-grained early exits evaluate fewer classifiers per window
    assert result.soft_classifiers_per_window < result.staged_classifiers_per_window
    assert result.work_reduction > 0.0
    # the two formulations agree on (almost) every accept/reject verdict
    assert result.acceptance_agreement > 0.99
    # simulated kernel time improves or at worst breaks even (the per-
    # classifier exit test costs a few instructions back)
    assert result.soft_time_ms <= result.staged_time_ms * 1.1
