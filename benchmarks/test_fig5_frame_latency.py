"""Fig. 5: per-frame detection-time traces for the 50/50 trailer."""

import numpy as np

from repro.experiments.fig5 import run_fig5


def test_fig5_frame_latency(benchmark, profile, report):
    result = benchmark.pedantic(
        run_fig5, args=(profile,), rounds=1, iterations=1
    )
    report(result.format_summary())

    # all four traces present, one sample per frame
    assert set(result.traces) == {
        "ours_concurrent", "ours_serial", "opencv_concurrent", "opencv_serial",
    }
    n = len(result.faces_per_frame)
    assert all(len(t) == n for t in result.traces.values())

    # the paper's ordering: serial OpenCV slowest, concurrent ours fastest
    assert result.ordering_holds()

    # per-frame variability driven by content (paper: "huge variability")
    ours = result.traces["ours_concurrent"]
    assert ours.max() > ours.min()

    # frames with more faces cost more on average (the mechanism behind the
    # variability): compare the busiest third against the emptiest third
    faces = np.array(result.faces_per_frame)
    if faces.max() > faces.min():
        busy = ours[faces >= np.quantile(faces, 0.67)]
        idle = ours[faces <= np.quantile(faces, 0.33)]
        if busy.size and idle.size:
            assert busy.mean() >= idle.mean() * 0.9

    # serial OpenCV violates the 24 fps deadline at least as often as any
    # other configuration (at 1080p full profile it is the only violator)
    v = {k: result.deadline_violations(k) for k in result.traces}
    assert v["opencv_serial"] >= max(v["ours_concurrent"], v["ours_serial"])
