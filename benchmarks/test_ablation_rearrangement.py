"""Related-work ablation: per-scale concurrent kernels vs rearrangement."""

from repro.experiments.rearrangement_ablation import run_rearrangement_comparison


def test_ablation_rearrangement(benchmark, profile, report):
    result = benchmark.pedantic(
        run_rearrangement_comparison, args=(profile,), rounds=1, iterations=1
    )
    report(result.format_table())

    # rearrangement does remove intra-warp divergence almost entirely...
    assert result.rearranged_branch_efficiency >= 0.99
    # ...but needs many more launches (compaction + relaunch per batch)
    assert result.rearranged_launch_count > result.paper_launch_count
    # both strategies land in the same performance ballpark; with the
    # paper's high-rejection cascade its simpler design is competitive
    ratio = result.rearranged_time_ms / result.paper_time_ms
    assert 0.4 <= ratio <= 4.0
