"""Tracing overhead bound: instrumentation must be (nearly) free.

Runs the 12-frame quarter-1080p bench twice — once with the null tracer,
once fully instrumented (spans + metrics) — alternating rounds and
scoring each path's minimum, and asserts the traced run costs < 5 %
extra wall-clock.  Also re-asserts byte-identical detections, because an
overhead bound for a tracer that changes answers would be meaningless.

``REPRO_BENCH_SMOKE=1`` shrinks the workload and skips the ratio gate
(shared CI runners have no stable wall clock); the identity assertion
always runs.
"""

import os
import time

import pytest

from repro.detect.engine import DetectionEngine
from repro.detect.pipeline import FaceDetectionPipeline
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.video.stream import synthetic_stream
from repro.zoo import paper_cascade, quick_cascade

pytestmark = pytest.mark.bench

_WIDTH, _HEIGHT = 480, 270
_MAX_OVERHEAD = 0.05


def _detections(results):
    return [
        [(d.x, d.y, d.size, d.score) for d in r.raw_detections] for r in results
    ]


def test_trace_overhead_bounded(report):
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    frames = 8 if smoke else 12
    trials = 2 if smoke else 3
    cascade = quick_cascade(seed=0) if smoke else paper_cascade(seed=0)

    lumas = [
        packet.luma
        for packet in synthetic_stream(_WIDTH, _HEIGHT, frames, faces=2, seed=0)
    ]
    pipeline = FaceDetectionPipeline(cascade)
    plain = DetectionEngine(pipeline, workers=4)
    traced = DetectionEngine(
        pipeline, workers=4, tracer=Tracer(), metrics=MetricsRegistry()
    )

    # warm both engines so workspace construction is outside the timed region
    plain_results = list(plain.process_frames(iter(lumas)))
    traced_results = list(traced.process_frames(iter(lumas)))
    assert _detections(traced_results) == _detections(plain_results), (
        "tracing changed the detections"
    )

    plain_times, traced_times = [], []
    for _ in range(trials):
        start = time.perf_counter()
        list(plain.process_frames(iter(lumas)))
        plain_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        list(traced.process_frames(iter(lumas)))
        traced_times.append(time.perf_counter() - start)

    best_plain, best_traced = min(plain_times), min(traced_times)
    overhead = best_traced / best_plain - 1.0
    report(
        f"trace overhead — {frames} frames, 4 workers: "
        f"untraced {best_plain:.3f}s, traced {best_traced:.3f}s "
        f"({overhead * 100.0:+.2f}%)"
    )

    if not smoke:
        assert overhead < _MAX_OVERHEAD, (
            f"tracing costs {overhead * 100.0:.1f}% wall-clock "
            f"(bound: {_MAX_OVERHEAD * 100.0:.0f}%)"
        )
