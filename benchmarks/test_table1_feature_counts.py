"""Table I: Haar feature combination counts in a 24x24 window."""

from repro.experiments.table1 import run_table1


def test_table1_feature_counts(benchmark, report):
    result = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    report(result.format_table())
    # exact reproduction: the counts match the paper to the digit
    assert result.matches_paper
    assert result.counts["edge"] == 55_660
    assert result.counts["line"] == 31_878
    assert result.counts["center_surround"] == 3_969
    assert result.counts["diagonal"] == 12_100
    assert result.total == 103_607
