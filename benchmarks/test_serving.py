"""Wall-clock serving benchmark: micro-batched vs unbatched requests.

Drives :func:`~repro.experiments.serving.run_serving` — a live
:class:`~repro.serve.server.DetectionServer` on loopback, closed-loop
clients at fixed concurrency — and asserts the serving tentpole: the
micro-batcher coalescing concurrent requests into engine batches
sustains >= 1.3x the OK-requests/second of the same server degenerated
to one frame per dispatch, with every HTTP response byte-identical to a
direct pipeline call.  Writes the ``BENCH_serving.json`` artifact that
CI uploads.

Knobs (environment variables, the CI jobs set them):

* ``REPRO_BENCH_SMOKE=1`` — shrink the workload and skip the rps-ratio
  gate; shared CI runners do not provide stable enough wall clocks for
  a ratio gate, so smoke mode checks the machinery (identity, artifact
  schema, admission/batcher accounting) and leaves the perf gate to the
  full local run.
* ``REPRO_BENCH_OUTPUT`` — artifact path (default ``BENCH_serving.json``).
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.serving import BENCH_SERVING_SCHEMA_VERSION, run_serving

pytestmark = pytest.mark.bench


def _artifact_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_OUTPUT", "BENCH_serving.json"))


def test_serving_batched_vs_unbatched(report):
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    result = run_serving(
        requests=24 if smoke else 96,
        concurrency=4 if smoke else 8,
        width=96,
        height=96,
        frames=4 if smoke else 6,
        cascade="quick",
        max_batch=8,
        max_delay_s=0.004,
    )
    report(result.format_table())

    path = result.write_json(_artifact_path())
    payload = json.loads(path.read_text())
    assert payload["experiment"] == "serving"
    assert payload["schema_version"] == BENCH_SERVING_SCHEMA_VERSION

    # provenance: serving trajectory points must be comparable across
    # PRs and separable by backend / sharding mode
    prov = payload["provenance"]
    assert {
        "git_sha", "timestamp_utc", "python", "numpy", "platform", "cpu_count"
    } <= set(prov)
    assert prov["backend"] == result.backend
    assert prov["mode"] == result.sharding

    workload = payload["workload"]
    assert workload["requests"] == result.requests
    assert workload["concurrency"] == result.concurrency
    assert workload["max_batch"] == result.max_batch

    # both runs completed every request: nothing hung, nothing 500'd
    for name in ("batched", "unbatched"):
        run = payload["runs"][name]
        assert run["errors"] == 0
        assert set(run["status_counts"]) <= {"200", "429"}, (
            f"{name} run produced non-2xx/429 statuses: {run['status_counts']}"
        )
        assert run["status_counts"]["200"] >= 1
        lat = run["latency"]
        assert 0 < lat["p50_s"] <= lat["p95_s"] <= lat["max_s"]
        server = run["server"]
        assert server["admission"]["admitted"] >= run["status_counts"]["200"]
        assert server["state"] == "ready"

    # the batched server really batched; the unbatched one really didn't
    assert payload["runs"]["batched"]["server"]["batcher"]["max_batch"] == 8
    assert payload["runs"]["unbatched"]["server"]["batcher"]["max_batch"] == 1

    # headline numbers the bench trajectory tracks
    assert payload["fps"] == result.fps > 0
    assert payload["latency"]["p50_s"] > 0
    assert payload["latency"]["p95_s"] >= payload["latency"]["p50_s"]
    assert payload["speedup"] == result.speedup > 0

    # the serving contract is non-negotiable in every mode: responses
    # must match a direct FaceDetectionPipeline call byte for byte
    assert result.identical_responses, (
        "served responses differ from the direct pipeline"
    )
    assert payload["identical_responses"] is True

    # the rps-ratio gate is meaningful only where the cores exist: with
    # one core the engine cannot overlap batch members, so batching only
    # amortises the executor hop (~50us against a multi-ms frame) and
    # the ratio is noise around 1.0.  A >= 2-core host gives the
    # batcher real parallelism to expose.
    if not smoke and (os.cpu_count() or 1) >= 2:
        assert result.speedup >= 1.3, (
            f"micro-batched serving reached only {result.speedup:.2f}x "
            f"unbatched rps (batched {result.batched.rps:.2f} rps, "
            f"unbatched {result.unbatched.rps:.2f} rps) at "
            f"concurrency {result.concurrency} on this host"
        )
