"""Table II: average face-detection time per frame, 10 trailers x 4 configs.

Shape criteria (see EXPERIMENTS.md for the resolution study):

* concurrent kernel execution beats serial for both cascades (paper: ~2x;
  sub-1080p quick profiles run hotter because per-kernel drain tails weigh
  more on small frames);
* the 1446-classifier GentleBoost cascade beats the 2913-classifier OpenCV
  baseline under concurrent execution (paper: ~2.5x);
* the combined configuration reproduces the headline ~5x (quick profile
  band is wider for the same reason as above).
"""

from repro.experiments.table2 import run_table2


def test_table2_detection_time(benchmark, profile, report):
    result = benchmark.pedantic(run_table2, args=(profile,), rounds=1, iterations=1)
    report(result.format_table())

    assert len(result.rows) == 10
    # every trailer individually shows both effects
    for row in result.rows:
        assert row.ours_concurrent < row.ours_serial
        assert row.opencv_concurrent < row.opencv_serial
        assert row.ours_concurrent < row.opencv_concurrent
    # aggregate bands (paper values: 2.05x / 2.03x / 2.5x / 5x)
    assert 1.5 <= result.concurrency_speedup_ours <= 3.5
    assert 1.5 <= result.concurrency_speedup_opencv <= 4.5
    assert 1.8 <= result.cascade_speedup_concurrent <= 3.5
    assert result.combined_speedup >= 3.5
