"""Fig. 7: rejection rate per cascade stage and image scale."""

import numpy as np

from repro.experiments.fig7 import run_fig7


def test_fig7_rejection_rates(benchmark, profile, report):
    result = benchmark.pedantic(run_fig7, args=(profile,), rounds=1, iterations=1)
    report(result.format_table())

    rates = result.rejection_rate_by_stage
    # paper: 94.52 % of windows rejected at the first stage
    assert 0.88 <= result.stage1_rejection <= 0.985
    # paper: ~4 % at the second stage
    assert 0.005 <= result.stage2_rejection <= 0.10
    # "dramatically reduced for the remaining stages": monotone-ish decay
    # over the early stages and tiny tail mass
    assert rates[1] < rates[0]
    assert rates[2] < rates[1]
    assert rates[3:-1].sum() < 0.02
    # acceptances are rare (only true faces + stray windows survive)
    assert rates[-1] < 5e-3
    # the matrix covers every scale and is a valid distribution
    matrix = result.rejection_matrix()
    assert np.allclose(matrix.sum(axis=1), 1.0)
    assert matrix.shape[1] == result.n_stages + 1
