"""Related-work ablation: multi-GPU scale parallelism (ref [10])."""

from repro.experiments.multigpu_ablation import run_multigpu_ablation


def test_ablation_multigpu(benchmark, profile, report):
    result = benchmark.pedantic(
        run_multigpu_ablation, args=(profile,), rounds=1, iterations=1
    )
    report(result.format_table())

    # more GPUs never hurt (static LPT partition)
    times = [result.balanced_ms[n] for n in (1, 2, 3, 4)]
    for a, b in zip(times, times[1:]):
        assert b <= a * 1.02
    # but speedup saturates far below linear: scale-0 dominates one device
    # ("unbalanced distribution of work", Section II)
    assert result.speedup(4) < 3.0
    assert result.imbalance[4] > 1.2
    # LPT beats naive round-robin at every device count > 1
    for n in (2, 3, 4):
        assert result.balanced_ms[n] <= result.round_robin_ms[n] * 1.001
