"""Fig. 9: TPR/FP curves for both cascades at 15/20/25 stages."""

from repro.experiments.fig9 import run_fig9


def test_fig9_roc_curves(benchmark, profile, report):
    result = benchmark.pedantic(run_fig9, args=(profile,), rounds=1, iterations=1)
    report(result.format_table())

    # six curves: {ours, opencv} x {15, 20, 25}
    assert len(result.curves) == 6

    # "the level of discrimination increases as more stages are considered"
    assert result.discrimination_improves_with_stages("ours")
    assert result.discrimination_improves_with_stages("opencv")

    # the detectors actually detect: full-depth cascades keep useful recall
    assert result.curves[("ours", 25)].tpr[-1] >= 0.5

    # "although the proposed cascade contains less filters, [it] generally
    # outperforms the OpenCV cascade in terms of TPR/FP"
    wins = sum(result.ours_not_worse(stages) for stages in (15, 20, 25))
    assert wins >= 2
