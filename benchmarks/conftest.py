"""Shared benchmark fixtures.

Every benchmark runs an experiment driver once (``benchmark.pedantic`` with
one round — the heavy lifting is the simulated workload, not the Python
call overhead), prints the paper-style table, and asserts the paper's shape
criteria.  Workload sizes come from ``REPRO_PROFILE`` (quick | full).

The first invocation trains and caches the two full-size cascades
(~10 minutes); subsequent runs load them from the artifact cache.
"""

import pytest

from repro.experiments.config import active_profile


@pytest.fixture(scope="session")
def profile():
    return active_profile()


@pytest.fixture(scope="session")
def report():
    """Print a report block so ``pytest -s`` shows paper-style output."""

    def _print(text: str) -> None:
        print("\n" + text + "\n")

    return _print
