"""Fig. 6: execution trace — small-scale cascade kernels overlap."""

from repro.experiments.fig6 import run_fig6


def test_fig6_kernel_trace(benchmark, profile, report):
    result = benchmark.pedantic(run_fig6, args=(profile,), rounds=1, iterations=1)
    report(result.format_trace())

    # serial execution never overlaps kernels
    assert result.serial_overlaps == 0
    # concurrent execution overlaps the small-scale cascade kernels (the
    # paper's figure shows them "executed completely overlapped")
    assert result.small_scale_overlaps >= 3
    # concurrency strictly reduces the frame makespan
    assert result.concurrent.makespan_s < result.serial.makespan_s
    # device utilisation rises under concurrent execution
    assert result.concurrent.utilization > result.serial.utilization
