#!/usr/bin/env python
"""Train a boosted cascade from scratch (Section IV workflow).

Builds a small GentleBoost cascade on synthetic faces with negative
bootstrapping, prints per-stage training diagnostics, saves it as JSON, and
evaluates it on a held-out mug-shot set — the full offline workflow the
paper describes, at toy scale (the real thing "usually requires several
days of computation").

Run:  python examples/train_cascade.py
"""

from pathlib import Path

import numpy as np

from repro.boosting.cascade_trainer import CascadeTrainer, default_negative_source
from repro.data.faces import render_training_chip
from repro.detect.detector import FaceDetector
from repro.evaluation.datasets import background_dataset, mugshot_dataset
from repro.evaluation.matching import match_detections
from repro.haar.cascade import Cascade
from repro.haar.enumeration import subsampled_feature_pool
from repro.utils.rng import rng_for
from repro.utils.tables import format_table


def main() -> None:
    seed = 11
    print("rendering 300 training faces (24x24, jittered, pyramid-degraded)...")
    rng = rng_for(seed, "train-example")
    faces = np.stack([render_training_chip(rng, 24) for _ in range(300)])

    pool = subsampled_feature_pool(900, seed=seed)
    print(f"feature pool: {len(pool)} of the 103,607 Table I combinations")

    trainer = CascadeTrainer(pool, algorithm="gentle", min_hit_rate=0.99)
    stage_sizes = [4, 6, 8, 12, 16, 20]
    print(f"training {len(stage_sizes)} stages {stage_sizes} with bootstrapping...")
    cascade, reports = trainer.train(
        faces,
        stage_sizes=stage_sizes,
        negative_source=default_negative_source(seed),
        name="example-cascade",
        seed=seed,
    )

    rows = [
        [
            r.index + 1,
            r.size,
            round(r.threshold, 3),
            round(100 * r.hit_rate, 1),
            round(100 * r.false_positive_rate, 1),
            r.negatives_used,
        ]
        for r in reports
    ]
    print()
    print(
        format_table(
            ["stage", "weak", "threshold", "hit (%)", "stage FPR (%)", "negatives"],
            rows,
            title="per-stage training report",
        )
    )

    path = Path(__file__).with_name("example_cascade.json")
    cascade.save(path)
    reloaded = Cascade.load(path)
    assert reloaded == cascade
    print(f"\ncascade saved to {path} ({cascade.num_weak_classifiers} weak classifiers)")

    print("\nevaluating on 30 held-out mug shots + 20 backgrounds...")
    detector = FaceDetector(cascade)
    samples = mugshot_dataset(30, seed=seed + 1) + background_dataset(20, seed=seed + 1)
    tp = fp = fn = 0
    for sample in samples:
        result = detector.detect(sample.image)
        match = match_detections(result.detections, sample.truth)
        tp += match.tp
        fp += match.fp
        fn += match.fn
    print(f"TP {tp}  FP {fp}  FN {fn}  (TPR {tp / max(tp + fn, 1):.2f})")


if __name__ == "__main__":
    main()
