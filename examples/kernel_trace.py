#!/usr/bin/env python
"""Inspect concurrent kernel execution like the paper's profiler runs.

Processes one trailer frame under serial and concurrent kernel execution
and prints (a) the ``conckerneltrace``-style timestamp table with an ASCII
per-stream Gantt chart (the Fig. 6 artefact), and (b) the counter report
with branch efficiency and DRAM throughput (the Section VI-A statistics).

Run:  python examples/kernel_trace.py
"""

from repro import FaceDetector
from repro.gpusim.profiler import CommandLineProfiler
from repro.gpusim.scheduler import ExecutionMode
from repro.video.trailer import trailer_frames


def main() -> None:
    detector = FaceDetector.pretrained("quick")
    frame, truth = next(iter(trailer_frames("The Dictator", 480, 270, 1, seed=2)))
    print(f"frame with {len(truth)} faces, 480x270\n")

    by_mode = detector.pipeline.schedule_modes(
        frame, [ExecutionMode.SERIAL, ExecutionMode.CONCURRENT]
    )
    serial = by_mode[ExecutionMode.SERIAL].schedule
    concurrent = by_mode[ExecutionMode.CONCURRENT].schedule

    for label, schedule in (("SERIAL", serial), ("CONCURRENT", concurrent)):
        profiler = CommandLineProfiler(schedule)
        print(f"=== {label} ===")
        print(profiler.summary())
        print(schedule.timeline.render_gantt(80))
        print()

    print("=== counters (concurrent) ===")
    print(CommandLineProfiler(concurrent).counter_report())
    ratio = serial.makespan_s / concurrent.makespan_s
    print(f"\nconcurrent kernel execution is {ratio:.2f}x faster on this frame")

    # the same timeline as a loadable Chrome trace (chrome://tracing or
    # ui.perfetto.dev), one track per simulated CUDA stream
    path = CommandLineProfiler(concurrent).write_chrome_trace("kernel_trace.json")
    print(f"chrome trace -> {path}")


if __name__ == "__main__":
    main()
