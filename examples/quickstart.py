#!/usr/bin/env python
"""Quickstart: detect faces in a synthetic scene.

Renders a scene with known ground truth, runs the pretrained quick detector,
prints the detections next to the truth, and writes ``quickstart_out.ppm``
(view with any image viewer; it is a plain binary PPM).

Run:  python examples/quickstart.py
"""

from pathlib import Path

import numpy as np

from repro import FaceDetector
from repro.detect.display import draw_detections
from repro.detect.grouping import RawDetection
from repro.utils.rng import rng_for
from repro.video.synthesis import render_scene


def save_ppm(path: Path, rgb: np.ndarray) -> None:
    """Write an (h, w, 3) uint8 array as binary PPM."""
    h, w, _ = rgb.shape
    with open(path, "wb") as f:
        f.write(f"P6 {w} {h} 255\n".encode("ascii"))
        f.write(rgb.tobytes())


def main() -> None:
    print("rendering a 320x240 scene with 3 faces...")
    frame, truth = render_scene(
        320, 240, faces=3, rng=rng_for(7, "quickstart"), min_face=30, max_face=80
    )

    print("loading the pretrained detector (first run trains & caches it)...")
    detector = FaceDetector.pretrained("quick")

    result = detector.detect(frame)
    print(
        f"\n{len(result.detections)} detections from {result.raw_count} raw windows; "
        f"simulated GPU time {result.detection_time_s * 1e3:.2f} ms\n"
    )
    print("ground truth:")
    for t in truth:
        print(f"  face at ({t.x:6.1f}, {t.y:6.1f}) size {t.size:5.1f}")
    print("detections:")
    for d in result.detections:
        print(
            f"  box  at ({d.x:6.1f}, {d.y:6.1f}) size {d.size:5.1f} "
            f"score {d.score:6.1f} eyes {tuple(round(v, 1) for v in d.left_eye)}"
            f"/{tuple(round(v, 1) for v in d.right_eye)}"
        )

    out = Path(__file__).with_name("quickstart_out.ppm")
    boxes = [RawDetection(d.x, d.y, d.size, d.score) for d in result.detections]
    save_ppm(out, draw_detections(frame, boxes))
    print(f"\nannotated frame written to {out}")


if __name__ == "__main__":
    main()
