#!/usr/bin/env python
"""End-to-end video pipeline: trailer -> mock H.264 -> decode -> detect.

Reproduces the paper's deployment loop on a synthetic trailer: mux frames
into the mock bitstream, decode them with the hardware-decoder model, run
the GPU face-detection pipeline per frame in both serial and concurrent
kernel-execution modes, and report the per-frame latency table plus the
overlapped decode+detect throughput (the paper's 70 fps argument).

Run:  python examples/video_pipeline.py [trailer-name]
"""

import sys

import numpy as np

from repro import FaceDetector
from repro.gpusim.scheduler import ExecutionMode
from repro.utils.tables import format_table
from repro.video.h264 import demux, encode_video
from repro.video.decoder import HardwareDecoder
from repro.video.trailer import TRAILERS, synthesize_trailer


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "50/50"
    width, height, n_frames = 480, 270, 8

    print(f"synthesising trailer {name!r} at {width}x{height}, {n_frames} frames...")
    frames, truth = synthesize_trailer(name, width, height, n_frames, seed=3)
    stream = encode_video(list(frames), fps=24.0, gop=4)
    print(
        f"muxed bitstream: {stream.coded_size} bytes, "
        f"{stream.bitrate() / 1e6:.2f} Mbit/s, GOP {stream.gop}"
    )

    detector = FaceDetector.pretrained("quick")
    decoder = HardwareDecoder(stream, seed=1)

    rows = []
    decode_ms, conc_ms, serial_ms = [], [], []
    for unit in demux(stream):
        decoded = decoder.decode(unit)
        by_mode = detector.pipeline.schedule_modes(
            decoded.luma, [ExecutionMode.CONCURRENT, ExecutionMode.SERIAL]
        )
        conc = by_mode[ExecutionMode.CONCURRENT]
        serial = by_mode[ExecutionMode.SERIAL]
        decode_ms.append(decoded.latency_s * 1e3)
        conc_ms.append(conc.detection_time_s * 1e3)
        serial_ms.append(serial.detection_time_s * 1e3)
        rows.append(
            [
                decoded.frame_index,
                "IDR" if decoded.is_idr else "P",
                len(truth[decoded.frame_index]),
                round(decoded.latency_s * 1e3, 2),
                round(serial.detection_time_s * 1e3, 2),
                round(conc.detection_time_s * 1e3, 2),
            ]
        )

    print()
    print(
        format_table(
            ["frame", "slice", "faces", "decode (ms)", "detect serial", "detect conc"],
            rows,
            title=f"per-frame pipeline latencies — {name}",
        )
    )
    speedup = np.mean(serial_ms) / np.mean(conc_ms)
    bound = max(np.mean(decode_ms), np.mean(conc_ms))
    print(
        f"\nconcurrent kernels speed detection up {speedup:.2f}x; "
        f"with decode overlapped the pipeline sustains {1e3 / bound:.1f} fps"
    )
    print(f"trailers available: {', '.join(s.name for s in TRAILERS)}")


if __name__ == "__main__":
    main()
