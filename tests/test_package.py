"""Package-level tests: public API surface and metadata."""

import re
from pathlib import Path

import repro


class TestPackageSurface:
    def test_version(self):
        """``__version__`` surfaces the pyproject.toml version.

        Installed trees read distribution metadata; PYTHONPATH=src runs
        use the hard-coded fallback — either way the value must match
        the pyproject the tree was built from, so the fallback cannot
        silently drift.
        """
        pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
        assert match, "pyproject.toml has no version field"
        assert repro.__version__ == match.group(1)

    def test_top_level_api(self):
        assert hasattr(repro, "FaceDetector")
        assert hasattr(repro, "Detection")
        assert hasattr(repro, "DetectionResult")

    def test_subpackages_importable(self):
        import repro.boosting
        import repro.data
        import repro.detect
        import repro.evaluation
        import repro.experiments
        import repro.gpusim
        import repro.haar
        import repro.image
        import repro.video  # noqa: F401

    def test_all_exports_resolve(self):
        import repro.boosting as b
        import repro.detect as d
        import repro.gpusim as g
        import repro.haar as h
        import repro.image as i
        import repro.video as v

        for module in (b, d, g, h, i, v):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"

    def test_errors_hierarchy(self):
        from repro import errors

        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, Exception)
            if name != "ReproError":
                assert issubclass(exc, errors.ReproError)
