"""Benchmark provenance: git SHA, timestamp and environment fingerprint."""

import re

from repro.utils.provenance import git_sha, provenance


def test_provenance_fields():
    p = provenance()
    assert set(p) == {
        "git_sha", "timestamp_utc", "python", "numpy", "platform", "cpu_count"
    }
    # ISO-8601 with explicit UTC offset
    assert re.match(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\+00:00$", p["timestamp_utc"])
    assert re.match(r"^\d+\.\d+", p["python"])
    assert p["cpu_count"] >= 1


def test_provenance_optional_tags():
    p = provenance(backend="vectorized", mode="processes")
    assert p["backend"] == "vectorized"
    assert p["mode"] == "processes"
    assert "mode" not in provenance(backend="reference")


def test_git_sha_is_hex_or_unknown():
    sha = git_sha()
    assert sha == "unknown" or re.fullmatch(r"[0-9a-f]{40}", sha)


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")
    assert git_sha() == "deadbeef"
