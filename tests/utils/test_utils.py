"""Tests for the shared utility modules."""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.utils.rng import derive_seed, rng_for
from repro.utils.tables import format_table
from repro.utils.timing import WallTimer, format_duration
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_shape_2d,
)


class TestRng:
    def test_same_path_same_seed(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_different_paths_differ(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_rng_streams_independent(self):
        a = rng_for(0, "x").uniform(size=4)
        b = rng_for(0, "y").uniform(size=4)
        assert not np.allclose(a, b)

    def test_rng_reproducible(self):
        a = rng_for(3, "t", 5).uniform(size=4)
        b = rng_for(3, "t", 5).uniform(size=4)
        np.testing.assert_array_equal(a, b)

    @given(st.integers(0, 2**32), st.text(max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_seed_in_64bit_range(self, root, name):
        assert 0 <= derive_seed(root, name) < 2**64

    def test_path_components_not_concatenated(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


class TestTables:
    def test_basic_render(self):
        text = format_table(["name", "value"], [["x", 1], ["longer", 23]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_right_aligned(self):
        text = format_table(["v"], [[1], [100]])
        rows = text.splitlines()[-2:]
        assert rows[0].endswith("1")

    def test_floats_formatted(self):
        assert "3.14" in format_table(["x"], [[3.14159]])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestTiming:
    def test_timer_accumulates(self):
        t = WallTimer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first

    def test_reset(self):
        t = WallTimer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_format_units(self):
        assert format_duration(5e-7).endswith("us")
        assert format_duration(5e-3).endswith("ms")
        assert format_duration(2.0).endswith("s")

    def test_format_rejects_negative(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ConfigurationError):
            check_positive("x", 0)

    def test_check_in_range(self):
        check_in_range("x", 0.5, 0, 1)
        with pytest.raises(ConfigurationError):
            check_in_range("x", 2, 0, 1)

    def test_check_probability(self):
        check_probability("p", 1.0)
        with pytest.raises(ConfigurationError):
            check_probability("p", -0.1)

    def test_check_shape_2d(self):
        check_shape_2d("m", np.ones((2, 2)))
        with pytest.raises(ConfigurationError):
            check_shape_2d("m", np.ones(4))
        with pytest.raises(ConfigurationError):
            check_shape_2d("m", np.ones((0, 3)))


class TestArtifacts:
    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.haar.cascade import Cascade, Stage, WeakClassifier
        from repro.haar.features import FeatureType, HaarFeature
        from repro.utils.artifacts import artifact_dir, cached_cascade

        assert artifact_dir() == tmp_path
        calls = []

        def build():
            calls.append(1)
            weak = WeakClassifier(
                feature=HaarFeature(FeatureType.EDGE_H, 1, 1, 3, 4),
                threshold=0.5, left=-1.0, right=1.0,
            )
            return Cascade(stages=(Stage((weak,), 0.0),), name="t")

        a = cached_cascade("unit-test", build)
        b = cached_cascade("unit-test", build)
        assert a == b
        assert len(calls) == 1  # second call hit the cache

    def test_corrupt_cache_rebuilt(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.haar.cascade import Cascade, Stage, WeakClassifier
        from repro.haar.features import FeatureType, HaarFeature
        from repro.utils.artifacts import cached_cascade

        (tmp_path / "broken.cascade.json").write_text("{ not json")

        def build():
            weak = WeakClassifier(
                feature=HaarFeature(FeatureType.EDGE_V, 1, 1, 2, 2),
                threshold=0.0, left=-1.0, right=1.0,
            )
            return Cascade(stages=(Stage((weak,), 0.0),), name="b")

        cascade = cached_cascade("broken", build)
        assert cascade.name == "b"
