"""Tests for texture emulation (tex2D bilinear fetches)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import MemoryModelError
from repro.image.texture import Texture2D


@pytest.fixture
def ramp():
    # 4x5 texture where texel (y, x) = 10*y + x.
    return Texture2D(np.add.outer(10.0 * np.arange(4), np.arange(5.0)))


class TestTexelCenters:
    def test_fetch_at_center_exact(self, ramp):
        assert ramp.fetch(2.5, 1.5) == pytest.approx(12.0)

    def test_fetch_grid_identity(self, ramp):
        xs = np.arange(5) + 0.5
        ys = np.arange(4) + 0.5
        out = ramp.fetch_grid(xs, ys)
        np.testing.assert_allclose(out, ramp.data, rtol=1e-6)

    def test_midpoint_interpolates(self, ramp):
        # halfway between texels (0,0) and (0,1): (0 + 1)/2
        assert ramp.fetch(1.0, 0.5) == pytest.approx(0.5)

    def test_vertical_interpolation(self, ramp):
        assert ramp.fetch(0.5, 1.0) == pytest.approx(5.0)


class TestClampAddressing:
    def test_clamps_left_of_texture(self, ramp):
        assert ramp.fetch(-3.0, 0.5) == pytest.approx(0.0)

    def test_clamps_beyond_right_edge(self, ramp):
        assert ramp.fetch(100.0, 0.5) == pytest.approx(4.0)

    def test_clamps_bottom(self, ramp):
        assert ramp.fetch(0.5, 100.0) == pytest.approx(30.0)


class TestShapes:
    def test_scalar_returns_zero_d(self, ramp):
        assert np.asarray(ramp.fetch(1.0, 1.0)).shape == ()

    def test_array_coords(self, ramp):
        out = ramp.fetch(np.array([0.5, 1.5]), np.array([0.5, 0.5]))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-6)

    def test_broadcasting(self, ramp):
        out = ramp.fetch(np.arange(3)[np.newaxis, :] + 0.5, np.arange(2)[:, np.newaxis] + 0.5)
        assert out.shape == (2, 3)

    def test_incompatible_shapes_raise(self, ramp):
        with pytest.raises(MemoryModelError):
            ramp.fetch(np.zeros(3), np.zeros(4))

    def test_data_readonly(self, ramp):
        with pytest.raises(ValueError):
            ramp.data[0, 0] = 99.0

    def test_rejects_1d(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            Texture2D(np.zeros(5))


class TestInterpolationProperties:
    @given(
        arrays(np.float32, (6, 7), elements=st.floats(0, 255, width=32)),
        st.floats(0.5, 6.5),
        st.floats(0.5, 5.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_within_convex_hull(self, data, x, y):
        tex = Texture2D(data)
        value = float(tex.fetch(x, y))
        assert data.min() - 1e-3 <= value <= data.max() + 1e-3

    @given(arrays(np.float32, (5, 5), elements=st.floats(0, 255, width=32)))
    @settings(max_examples=30, deadline=None)
    def test_constant_along_flat_texture(self, data):
        flat = Texture2D(np.full((4, 4), 42.0, dtype=np.float32))
        assert float(flat.fetch(1.7, 2.3)) == pytest.approx(42.0, rel=1e-5)
