"""Tests for the pyramid scaling and anti-alias filtering stages."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.image.filtering import antialias, binomial_kernel, separable_convolve
from repro.image.pyramid import (
    PyramidConfig,
    build_pyramid,
    downscale,
    pyramid_scales,
    scaling_launch,
)
from repro.image.texture import Texture2D


class TestBinomialKernel:
    def test_radius_zero_identity(self):
        np.testing.assert_allclose(binomial_kernel(0), [1.0])

    def test_radius_one_classic(self):
        np.testing.assert_allclose(binomial_kernel(1), [0.25, 0.5, 0.25])

    def test_normalised(self):
        for r in range(4):
            assert binomial_kernel(r).sum() == pytest.approx(1.0)

    def test_symmetric(self):
        k = binomial_kernel(3)
        np.testing.assert_allclose(k, k[::-1])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            binomial_kernel(-1)


class TestSeparableConvolve:
    def test_preserves_constant_image(self):
        img = np.full((8, 9), 7.0)
        out = separable_convolve(img, binomial_kernel(2))
        np.testing.assert_allclose(out, img, rtol=1e-6)

    def test_preserves_mean_roughly(self):
        rng = np.random.default_rng(0)
        img = rng.uniform(0, 255, (32, 32)).astype(np.float32)
        out = separable_convolve(img, binomial_kernel(1))
        assert out.mean() == pytest.approx(img.mean(), rel=0.02)

    def test_smooths_noise(self):
        rng = np.random.default_rng(1)
        img = rng.normal(128, 30, (64, 64)).astype(np.float32)
        out = separable_convolve(img, binomial_kernel(2))
        assert out.std() < img.std()

    def test_rejects_even_kernel(self):
        with pytest.raises(ConfigurationError):
            separable_convolve(np.ones((4, 4)), np.ones(4))

    def test_shape_preserved(self):
        out = separable_convolve(np.ones((5, 9)), binomial_kernel(2))
        assert out.shape == (5, 9)


class TestAntialias:
    def test_no_filter_for_tiny_scale(self):
        img = np.random.default_rng(2).uniform(0, 255, (16, 16))
        np.testing.assert_allclose(antialias(img, 1.1), img.astype(np.float32))

    def test_filters_for_big_scale(self):
        rng = np.random.default_rng(3)
        img = rng.normal(128, 40, (32, 32)).astype(np.float32)
        assert antialias(img, 3.0).std() < img.std()

    def test_rejects_upscale(self):
        with pytest.raises(ConfigurationError):
            antialias(np.ones((8, 8)), 0.9)


class TestPyramidScales:
    def test_first_scale_is_one(self):
        assert pyramid_scales(640, 360, PyramidConfig())[0] == 1.0

    def test_geometric_progression(self):
        scales = pyramid_scales(640, 360, PyramidConfig(scale_factor=1.2))
        for a, b in zip(scales, scales[1:]):
            assert b / a == pytest.approx(1.2)

    def test_stops_at_window_size(self):
        cfg = PyramidConfig()
        scales = pyramid_scales(1920, 1080, cfg)
        last = scales[-1]
        assert int(1080 / last) >= cfg.min_image_side
        assert int(1080 / (last * cfg.scale_factor)) < cfg.min_image_side

    def test_1080p_level_count(self):
        # 1080/24 = 45 => log_1.2(45) ~ 20.9 => 21 levels.
        assert len(pyramid_scales(1920, 1080, PyramidConfig())) == 21

    def test_too_small_frame_raises(self):
        with pytest.raises(ConfigurationError):
            pyramid_scales(10, 10, PyramidConfig())

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            PyramidConfig(scale_factor=1.0)
        with pytest.raises(ConfigurationError):
            PyramidConfig(window=0)


class TestDownscale:
    def test_identity_when_same_size(self):
        img = np.random.default_rng(4).uniform(0, 255, (12, 16)).astype(np.float32)
        out = downscale(Texture2D(img), 16, 12)
        np.testing.assert_allclose(out, img, atol=1e-4)

    def test_half_size_averages_neighbourhoods(self):
        img = np.full((8, 8), 100.0, dtype=np.float32)
        out = downscale(Texture2D(img), 4, 4)
        np.testing.assert_allclose(out, 100.0, atol=1e-4)

    def test_output_shape(self):
        img = np.zeros((30, 40), dtype=np.float32)
        assert downscale(Texture2D(img), 13, 11).shape == (11, 13)

    def test_rejects_empty_output(self):
        with pytest.raises(ConfigurationError):
            downscale(Texture2D(np.zeros((4, 4))), 0, 4)


class TestBuildPyramid:
    @pytest.fixture
    def frame(self):
        rng = np.random.default_rng(5)
        return rng.uniform(0, 255, (120, 160)).astype(np.float32)

    def test_level_zero_is_frame(self, frame):
        levels = build_pyramid(frame)
        np.testing.assert_array_equal(levels[0].image, frame)

    def test_level_dims_match_scales(self, frame):
        for level in build_pyramid(frame):
            assert level.width == int(160 / level.scale)
            assert level.height == int(120 / level.scale)
            assert level.image.shape == (level.height, level.width)

    def test_all_levels_hold_window(self, frame):
        cfg = PyramidConfig()
        for level in build_pyramid(frame, cfg):
            assert min(level.width, level.height) >= cfg.window

    def test_deterministic(self, frame):
        a = build_pyramid(frame)
        b = build_pyramid(frame)
        for la, lb in zip(a, b):
            np.testing.assert_array_equal(la.image, lb.image)

    def test_intensity_preserved_down_pyramid(self, frame):
        levels = build_pyramid(frame)
        for level in levels:
            assert level.image.mean() == pytest.approx(frame.mean(), rel=0.1)

    @given(st.integers(48, 200), st.integers(48, 200))
    @settings(max_examples=10, deadline=None)
    def test_property_levels_shrink(self, w, h):
        frame = np.zeros((h, w), dtype=np.float32)
        levels = build_pyramid(frame)
        sizes = [lv.width * lv.height for lv in levels]
        assert sizes == sorted(sizes, reverse=True)


class TestScalingLaunch:
    def test_grid_covers_output(self):
        launch = scaling_launch(100, 60, stream=3)
        assert launch.config.grid_blocks == 7 * 4
        assert launch.stream == 3

    def test_work_scales_with_area(self):
        small = scaling_launch(64, 64, stream=0)
        large = scaling_launch(256, 256, stream=0)
        assert large.config.grid_blocks == 16 * small.config.grid_blocks
