"""Tests for the rotated summed-area table and tilted rectangle sums."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.image.tilted import (
    tilted_integral_image,
    tilted_rect_pixel_count,
    tilted_rect_sum,
    tilted_rect_sum_brute,
)


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(3)
    img = rng.uniform(0, 255, (14, 18))
    return img, tilted_integral_image(img)


class TestTable:
    def test_shape_includes_guards(self, scene):
        img, tsat = scene
        h, w = img.shape
        assert tsat.shape == (h + 1, w + 2 * (h + 2))

    def test_row_zero_empty(self, scene):
        _, tsat = scene
        assert np.all(tsat[0] == 0.0)

    def test_apex_cone_is_single_pixel(self, scene):
        img, tsat = scene
        pad = img.shape[0] + 2
        # cone with apex pixel (0, 3): contains just that pixel
        assert tsat[1, 4 + pad] == pytest.approx(img[0, 3])


class TestTiltedRectSum:
    def test_matches_brute_force_grid(self, scene):
        img, tsat = scene
        for x in range(-1, 19, 3):
            for y in range(0, 8, 2):
                for a, b in ((1, 1), (2, 3), (3, 2)):
                    if y + a + b > img.shape[0]:
                        continue
                    assert tilted_rect_sum(tsat, x, y, a, b) == pytest.approx(
                        tilted_rect_sum_brute(img, x, y, a, b)
                    )

    @given(
        st.integers(0, 10**6),
        st.integers(-2, 18),
        st.integers(0, 6),
        st.integers(1, 4),
        st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_brute(self, seed, x, y, a, b):
        rng = np.random.default_rng(seed)
        img = rng.uniform(0, 50, (12, 16))
        if y + a + b > 12:
            return
        tsat = tilted_integral_image(img)
        assert tilted_rect_sum(tsat, x, y, a, b) == pytest.approx(
            tilted_rect_sum_brute(img, x, y, a, b), rel=1e-9, abs=1e-9
        )

    def test_pixel_count_on_ones(self):
        ones = np.ones((16, 20))
        tsat = tilted_integral_image(ones)
        for x, y, a, b in ((8, 2, 2, 3), (10, 0, 4, 4), (6, 5, 3, 2)):
            assert tilted_rect_sum(tsat, x, y, a, b) == tilted_rect_pixel_count(a, b)

    def test_rejects_bad_arms(self, scene):
        _, tsat = scene
        with pytest.raises(ConfigurationError):
            tilted_rect_sum(tsat, 5, 0, 0, 2)

    def test_rejects_below_image(self, scene):
        _, tsat = scene
        with pytest.raises(ConfigurationError):
            tilted_rect_sum(tsat, 5, 10, 3, 3)

    def test_pixel_count_validation(self):
        with pytest.raises(ConfigurationError):
            tilted_rect_pixel_count(0, 1)

    def test_additivity(self, scene):
        # splitting a tilted rectangle along its a-axis preserves the sum
        img, tsat = scene
        whole = tilted_rect_sum(tsat, 8, 1, 4, 2)
        left = tilted_rect_sum(tsat, 8, 1, 2, 2)
        right = tilted_rect_sum(tsat, 10, 3, 2, 2)
        assert whole == pytest.approx(left + right)
