"""Tests for prefix sums, transposes and integral images."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.image.integral import (
    integral_image,
    integral_image_gpu_path,
    integral_image_sequential,
    integral_launches,
    rect_sum,
    squared_integral_image,
)
from repro.image.scan import blelloch_block_scan, inclusive_scan_rows, scan_row_launches
from repro.image.transpose import tiled_transpose, transpose_launch


class TestBlellochScan:
    def test_matches_cumsum_small(self):
        data = np.arange(10.0)
        np.testing.assert_allclose(blelloch_block_scan(data, 4), np.cumsum(data))

    def test_single_element(self):
        np.testing.assert_allclose(blelloch_block_scan(np.array([7.0])), [7.0])

    def test_empty(self):
        assert blelloch_block_scan(np.zeros(0)).size == 0

    def test_exact_block_multiple(self):
        data = np.ones(512)
        np.testing.assert_allclose(blelloch_block_scan(data, 128), np.arange(1, 513))

    def test_multi_level_recursion(self):
        # Forces block sums of block sums: n >> 2*block^2
        data = np.ones(300)
        np.testing.assert_allclose(blelloch_block_scan(data, 4), np.arange(1, 301))

    def test_rejects_bad_block(self):
        with pytest.raises(ConfigurationError):
            blelloch_block_scan(np.ones(4), 0)

    @given(
        arrays(np.float64, st.integers(1, 600), elements=st.floats(-100, 100)),
        st.sampled_from([2, 4, 16, 128, 256]),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_cumsum(self, data, block):
        np.testing.assert_allclose(
            blelloch_block_scan(data, block), np.cumsum(data), rtol=1e-9, atol=1e-7
        )


class TestRowScan:
    def test_matches_per_row_cumsum(self):
        rng = np.random.default_rng(0)
        m = rng.uniform(0, 255, (7, 33))
        np.testing.assert_allclose(inclusive_scan_rows(m), np.cumsum(m, axis=1))

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            inclusive_scan_rows(np.ones(5))

    def test_launches_structure_small_row(self):
        launches = scan_row_launches(100, 300, stream=2)
        assert len(launches) == 1  # single block per row: no uniform add
        assert launches[0].stream == 2
        assert launches[0].config.grid_blocks == 100

    def test_launches_structure_wide_row(self):
        launches = scan_row_launches(10, 4096, stream=1)
        assert len(launches) == 2
        assert launches[0].config.grid_blocks == 10 * 8

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            scan_row_launches(0, 10, 0)


class TestTranspose:
    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        m = rng.normal(size=(50, 70))
        np.testing.assert_array_equal(tiled_transpose(m), m.T)

    def test_ragged_edges(self):
        m = np.arange(33 * 45).reshape(33, 45)
        np.testing.assert_array_equal(tiled_transpose(m), m.T)

    def test_single_element(self):
        np.testing.assert_array_equal(tiled_transpose(np.array([[3.0]])), [[3.0]])

    @given(st.integers(1, 80), st.integers(1, 80))
    @settings(max_examples=25, deadline=None)
    def test_property_involution(self, h, w):
        m = np.arange(h * w, dtype=np.float64).reshape(h, w)
        np.testing.assert_array_equal(tiled_transpose(tiled_transpose(m)), m)

    def test_launch_grid_covers_matrix(self):
        launch = transpose_launch(100, 65, stream=0)
        assert launch.config.grid_blocks == 4 * 3
        assert launch.config.shared_mem_per_block == 33 * 32 * 4


class TestIntegralImage:
    def test_matches_sequential_reference(self):
        rng = np.random.default_rng(2)
        img = rng.uniform(0, 255, (13, 17))
        np.testing.assert_allclose(integral_image(img), integral_image_sequential(img))

    def test_gpu_path_matches_fast_path(self):
        rng = np.random.default_rng(3)
        img = rng.uniform(0, 255, (24, 40))
        np.testing.assert_allclose(
            integral_image_gpu_path(img, block_size=8), integral_image(img), rtol=1e-9
        )

    def test_padded_shape(self):
        assert integral_image(np.ones((5, 7))).shape == (6, 8)

    def test_zero_border(self):
        ii = integral_image(np.ones((4, 4)))
        assert np.all(ii[0, :] == 0) and np.all(ii[:, 0] == 0)

    def test_total_sum_in_corner(self):
        img = np.arange(12.0).reshape(3, 4)
        assert integral_image(img)[-1, -1] == img.sum()

    def test_squared_integral(self):
        img = np.full((3, 3), 2.0)
        sq = squared_integral_image(img)
        assert sq[-1, -1] == pytest.approx(36.0)

    @given(
        arrays(np.float64, (10, 12), elements=st.floats(0, 255)),
        st.integers(0, 9), st.integers(0, 7), st.integers(1, 3), st.integers(1, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_rect_sum_matches_brute_force(self, img, x, y, w, h):
        if x + w > 12 or y + h > 10:
            return
        ii = integral_image(img)
        expected = img[y : y + h, x : x + w].sum()
        assert rect_sum(ii, x, y, w, h) == pytest.approx(expected, rel=1e-9, abs=1e-6)

    def test_rect_sum_bounds_checked(self):
        ii = integral_image(np.ones((5, 5)))
        with pytest.raises(ConfigurationError):
            rect_sum(ii, 4, 4, 3, 3)
        with pytest.raises(ConfigurationError):
            rect_sum(ii, -1, 0, 2, 2)

    def test_launch_sequence_structure(self):
        launches = integral_launches(64, 128, stream=5)
        names = [l.name for l in launches]
        assert names[0].startswith("scan_")
        assert any(n.startswith("transpose_") for n in names)
        assert all(l.stream == 5 for l in launches)
        # scan rows, transpose, scan rows (transposed dims), transpose back
        assert len(launches) == 4
