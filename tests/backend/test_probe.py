"""Capability-probe tests: device order, overrides, skip reasons.

CI runners have no accelerator, so these tests monkeypatch fake
``cupy``/``torch`` modules into ``sys.modules`` and assert the resolver
walks CUDA -> MPS -> CPU, honours hard overrides, records why each
candidate was skipped, and never caches a failed probe.
"""

import sys
import types
from concurrent.futures import Future

import numpy as np
import pytest

from repro.backend import (
    ArrayApiBackend,
    get_backend,
    probe_all,
    resolve_backend,
)
from repro.backend import registry as registry_mod
from repro.detect.engine import DetectionEngine
from repro.detect.pipeline import FaceDetectionPipeline, PipelineConfig
from repro.errors import BackendUnavailableError, ConfigurationError
from repro.zoo import quick_cascade


def _fake_cupy(device_count=1):
    mod = types.ModuleType("cupy")
    mod.bool_ = np.bool_
    mod.cuda = types.SimpleNamespace(
        runtime=types.SimpleNamespace(getDeviceCount=lambda: device_count)
    )
    return mod


def _fake_torch(cuda=False, mps=False):
    mod = types.ModuleType("torch")
    mod.bool = np.bool_
    mod.cuda = types.SimpleNamespace(is_available=lambda: cuda)
    mod.backends = types.SimpleNamespace(
        mps=types.SimpleNamespace(is_available=lambda: mps)
    )
    return mod


@pytest.fixture(autouse=True)
def _no_env_override(monkeypatch):
    monkeypatch.delenv(registry_mod.ENV_VAR, raising=False)


@pytest.fixture(autouse=True)
def _drop_fake_device_instances():
    """Fake-module probes must never leak cached accelerator instances."""
    yield
    with registry_mod._lock:
        for key in [k for k in registry_mod._instances if k[1] != "cpu"]:
            del registry_mod._instances[key]


class TestProbeOrder:
    def test_no_accelerators_lands_cpu(self):
        # cupy/torch are genuinely absent here: the walk must stay total
        resolved = resolve_backend()
        assert resolved.device == "cpu"
        assert resolved.backend.name == "reference"
        skipped = [p for p in resolved.report.probes if not p.available]
        assert {(p.backend, p.device) for p in skipped} == {
            ("arrayapi", "cuda"),
            ("arrayapi", "mps"),
        }
        assert "cupy not importable" in resolved.report.path

    def test_fake_cuda_selected_first(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "cupy", _fake_cupy())
        resolved = resolve_backend()
        assert resolved.backend.name == "arrayapi"
        assert resolved.device == "cuda"
        assert resolved.report.probes[0].device == "cuda"
        assert resolved.backend.api == "cupy"

    def test_mps_probed_after_cuda(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "torch", _fake_torch(cuda=False, mps=True))
        resolved = resolve_backend()
        assert resolved.backend.name == "arrayapi"
        assert resolved.device == "mps"
        devices = [p.device for p in resolved.report.probes]
        assert devices == ["cuda", "mps"]
        assert not resolved.report.probes[0].available

    def test_torch_cuda_backs_up_cupy(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "cupy", _fake_cupy(device_count=0))
        monkeypatch.setitem(sys.modules, "torch", _fake_torch(cuda=True))
        resolved = resolve_backend()
        assert resolved.device == "cuda"
        assert resolved.backend.api == "torch"

    def test_failed_probes_are_not_cached(self, monkeypatch):
        before = resolve_backend()
        assert before.device == "cpu"
        # the machine "grows" a GPU between calls; the next walk sees it
        monkeypatch.setitem(sys.modules, "cupy", _fake_cupy())
        after = resolve_backend()
        assert after.device == "cuda"


class TestOverrides:
    def test_explicit_prefer_beats_available_accelerator(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "cupy", _fake_cupy())
        resolved = resolve_backend(prefer="vectorized")
        assert resolved.backend.name == "vectorized"
        assert resolved.device == "cpu"
        assert all(p.backend == "vectorized" for p in resolved.report.probes)

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(registry_mod.ENV_VAR, "arrayapi")
        resolved = resolve_backend()
        assert resolved.backend.name == "arrayapi"
        assert resolved.report.requested == "arrayapi"

    def test_unavailable_override_fails_loudly(self):
        with pytest.raises(ConfigurationError) as exc:
            resolve_backend(prefer="arrayapi", device="cuda")
        message = str(exc.value)
        assert "probe report" in message
        assert "cupy not importable" in message

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown device"):
            resolve_backend(device="tpu")

    def test_unknown_backend_lists_names_and_skips(self):
        with pytest.raises(ConfigurationError) as exc:
            get_backend("no-such-backend")
        message = str(exc.value)
        assert "reference" in message and "arrayapi" in message
        assert "skipped candidates" in message
        assert "cupy not importable" in message


class TestProbeAll:
    def test_every_candidate_recorded(self):
        report = probe_all()
        pairs = {(p.backend, p.device) for p in report.probes}
        assert ("arrayapi", "cuda") in pairs
        assert ("arrayapi", "mps") in pairs
        assert ("reference", "cpu") in pairs
        assert ("vectorized", "cpu") in pairs
        assert report.selected is None

    def test_report_text_carries_skip_reasons(self):
        text = probe_all().format_report()
        assert "arrayapi:cuda skipped" in text
        assert "reference:cpu ok" in text

    def test_to_dict_is_json_shaped(self):
        d = probe_all().to_dict()
        assert isinstance(d["path"], str)
        assert all(set(p) == {"backend", "device", "available", "reason"}
                   for p in d["probes"])


class TestFakeDeviceBackend:
    def test_cuda_capabilities(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "cupy", _fake_cupy())
        backend = ArrayApiBackend(device="cuda")
        caps = backend.capabilities
        assert caps.device == "cuda"
        assert caps.device_bound
        assert caps.exactness == "tolerance"

    def test_mps_requires_torch(self):
        with pytest.raises(BackendUnavailableError, match="torch not importable"):
            ArrayApiBackend(device="mps")


class _FakePool:
    """Stands in for a ProcessPoolExecutor during the probe handshake."""

    def __init__(self, replies):
        self._replies = list(replies)
        self.shut_down = False

    def submit(self, fn, *args, **kwargs):
        future = Future()
        reply = self._replies.pop(0)
        if isinstance(reply, Exception):
            future.set_exception(reply)
        else:
            future.set_result(reply)
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.shut_down = True


class TestShardHandshake:
    @pytest.fixture()
    def engine(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "cupy", _fake_cupy())
        pipeline = FaceDetectionPipeline(
            quick_cascade(seed=0),
            config=PipelineConfig(backend=ArrayApiBackend(device="cuda")),
        )
        engine = DetectionEngine(pipeline, workers=2, sharding="processes")
        yield engine
        engine.close()

    def _reply(self, backend="arrayapi", device="cuda"):
        return {"pid": 1234, "backend": backend, "device": device,
                "probe_path": "fake"}

    def test_matching_probes_pass(self, engine):
        engine._pool = _FakePool([self._reply(), self._reply()])
        engine._verify_worker_probes()  # must not raise

    def test_device_mismatch_refused(self, engine):
        pool = _FakePool([self._reply(), self._reply(device="cpu")])
        engine._pool = pool
        with pytest.raises(ConfigurationError, match="cannot shard device-bound"):
            engine._verify_worker_probes()
        assert pool.shut_down

    def test_worker_probe_failure_refused(self, engine):
        pool = _FakePool([self._reply(), RuntimeError("worker died")])
        engine._pool = pool
        with pytest.raises(ConfigurationError, match="worker probe failed"):
            engine._verify_worker_probes()
        assert pool.shut_down
