"""Tests for the compute-backend registry and its resolution rules."""

import pytest

from repro.backend import (
    DEFAULT_BACKEND,
    ENV_VAR,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
)
from repro.detect.pipeline import FaceDetectionPipeline, PipelineConfig
from repro.errors import ConfigurationError
from repro.zoo import quick_cascade


class TestResolution:
    def test_builtins_registered(self):
        assert {"reference", "vectorized"} <= set(available_backends())

    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_backend_name() == DEFAULT_BACKEND == "reference"
        assert get_backend(None).name == "reference"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown compute backend"):
            get_backend("no-such-backend")

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigurationError, match="reference"):
            get_backend("no-such-backend")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorized")
        assert default_backend_name() == "vectorized"
        assert get_backend(None).name == "vectorized"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorized")
        assert get_backend("reference").name == "reference"

    def test_env_override_unknown_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "no-such-backend")
        with pytest.raises(ConfigurationError, match="unknown compute backend"):
            get_backend(None)

    def test_instances_are_cached_singletons(self):
        assert get_backend("reference") is get_backend("reference")
        assert get_backend("vectorized") is get_backend("vectorized")

    def test_instance_passthrough(self):
        backend = ReferenceBackend()
        assert get_backend(backend) is backend

    def test_backend_types(self):
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("vectorized"), VectorizedBackend)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("reference", ReferenceBackend)

    def test_replace_allows_reregistration(self):
        register_backend("reference", ReferenceBackend, replace=True)
        assert get_backend("reference").name == "reference"

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend("not a name!", ReferenceBackend)


class TestPipelineIntegration:
    def test_unknown_backend_fails_at_pipeline_construction(self):
        with pytest.raises(ConfigurationError, match="unknown compute backend"):
            FaceDetectionPipeline(
                quick_cascade(seed=0), config=PipelineConfig(backend="no-such-backend")
            )

    def test_pipeline_honors_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorized")
        pipeline = FaceDetectionPipeline(quick_cascade(seed=0))
        assert pipeline.backend.name == "vectorized"

    def test_pipeline_explicit_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorized")
        pipeline = FaceDetectionPipeline(
            quick_cascade(seed=0), config=PipelineConfig(backend="reference")
        )
        assert pipeline.backend.name == "reference"
