"""Golden tolerance-gate validation of the ``arrayapi`` backend.

The array-API backend declares ``exactness="tolerance"`` in its
capability record, so the oracle holds it to explicit per-stage bounds
plus the detection-level IoU/score gate — the acceptance contract for
any accelerator backend.  These tests run that gate against
``reference`` on the same three goldens the byte-identity suite uses (a
synthetic scene, a trailer frame, a multi-frame stream) and pin the
dispatch rules: reference-vs-vectorized must keep the byte gate through
the same refactored differ.
"""

import pytest

from repro.backend import ArrayApiBackend
from repro.backend.oracle import StageBound, ToleranceSpec, compare_backends
from repro.utils.rng import rng_for
from repro.video.synthesis import render_scene
from repro.video.trailer import trailer_frames
from repro.zoo import quick_cascade

#: explicit accelerator acceptance bounds — what a CUDA/MPS namespace
#: would be held to; the NumPy namespace must clear them trivially
ACCEPTANCE = ToleranceSpec(
    pixels=StageBound(atol=1e-3, rtol=1e-6),
    integrals=StageBound(atol=1e-2, rtol=1e-9),
    maps=StageBound(atol=1e-6, rtol=1e-9),
    depth_mismatch_fraction=0.0,
    iou_min=0.99,
    score_delta=1e-6,
)


@pytest.fixture(scope="module")
def cascade():
    return quick_cascade(seed=0)


@pytest.fixture(scope="module")
def scene_frame():
    frame, _ = render_scene(320, 240, faces=3, rng=rng_for(0, "oracle-scene"))
    return frame


@pytest.fixture(scope="module")
def trailer_frame():
    frame, _ = next(trailer_frames("50/50", 192, 144, n_frames=1, seed=3))
    return frame


def _assert_tolerance_pass(report):
    assert report.mode == "tolerance"
    assert report.tolerance is ACCEPTANCE
    assert report.identical, "\n".join(report.mismatches[:20])


def test_capability_record():
    backend = ArrayApiBackend()
    caps = backend.capabilities
    assert caps.device == "cpu"
    assert caps.exactness == "tolerance"
    assert not caps.device_bound
    assert backend.api == "numpy"


def test_synthetic_scene_within_tolerance(cascade, scene_frame):
    report = compare_backends(
        [scene_frame],
        cascade,
        backends=("reference", "arrayapi"),
        tolerance=ACCEPTANCE,
    )
    assert report.backends == ("reference", "arrayapi")
    _assert_tolerance_pass(report)


def test_trailer_frame_within_tolerance(cascade, trailer_frame):
    report = compare_backends(
        [trailer_frame],
        cascade,
        backends=("reference", "arrayapi"),
        tolerance=ACCEPTANCE,
    )
    _assert_tolerance_pass(report)


def test_multi_frame_stream_within_tolerance(cascade):
    frames = [
        render_scene(128, 96, faces=1, rng=rng_for(0, "oracle-stream", i))[0]
        for i in range(3)
    ]
    report = compare_backends(
        frames,
        cascade,
        backends=("reference", "arrayapi"),
        tolerance=ACCEPTANCE,
    )
    assert report.frames == 3
    _assert_tolerance_pass(report)


def test_tolerance_gate_is_automatic(cascade, scene_frame):
    # no explicit tolerance: the arrayapi capability record alone must
    # flip the differ from the byte gate to the tolerance gate
    report = compare_backends(
        [scene_frame], cascade, backends=("reference", "arrayapi")
    )
    assert report.mode == "tolerance"
    assert report.tolerance == ToleranceSpec()
    assert report.identical, "\n".join(report.mismatches[:20])


def test_bitexact_pair_keeps_byte_gate(cascade, scene_frame):
    report = compare_backends([scene_frame], cascade)
    assert report.backends == ("reference", "vectorized")
    assert report.mode == "bitexact"
    assert report.tolerance is None
    assert report.identical, "\n".join(report.mismatches[:20])


def test_explicit_tolerance_forces_gate_on_bitexact_pair(cascade, scene_frame):
    report = compare_backends(
        [scene_frame], cascade, tolerance=ToleranceSpec()
    )
    assert report.mode == "tolerance"
    assert report.identical, "\n".join(report.mismatches[:20])
