"""Unit-level byte-identity tests for the backend plans and evaluators.

Each reusable plan (bilinear, integral, cascade evaluation) must produce
the same bits as the one-shot primitive it amortises, and the
``vectorized`` evaluator must match the ``reference`` one exactly —
structural freedom (batched gathers, a different dense->sparse switch
point) is allowed, numerical freedom is not.
"""

import numpy as np
import pytest

from repro.backend import get_backend
from repro.detect.kernels import cascade_eval_kernel
from repro.detect.windows import BlockMapping
from repro.errors import ConfigurationError
from repro.haar.cascade import Cascade, Stage, WeakClassifier
from repro.haar.enumeration import subsampled_feature_pool
from repro.image.integral import integral_image, squared_integral_image
from repro.image.pyramid import downscale
from repro.image.texture import Texture2D
from repro.utils.rng import rng_for


def toy_cascade(stage_sizes=(3, 3, 4), seed=0, stage_threshold=0.3):
    """A selective little cascade exercising both dense and sparse stages."""
    rng = rng_for(seed, "backend-toy-cascade")
    pool = subsampled_feature_pool(sum(stage_sizes) + 5, seed=seed)
    stages = []
    k = 0
    for size in stage_sizes:
        cls = []
        for _ in range(size):
            cls.append(
                WeakClassifier(
                    feature=pool[k],
                    threshold=float(rng.normal(0, 5)),
                    left=float(rng.uniform(-1, 1)),
                    right=float(rng.uniform(-1, 1)),
                )
            )
            k += 1
        stages.append(Stage(classifiers=tuple(cls), threshold=stage_threshold))
    return Cascade(stages=tuple(stages), name="backend-toy")


@pytest.fixture(scope="module")
def image():
    rng = rng_for(5, "backend-image")
    return rng.uniform(0, 255, (72, 96))


@pytest.fixture(scope="module", params=["reference", "vectorized", "arrayapi"])
def backend(request):
    return get_backend(request.param)


class TestBilinearPlan:
    @pytest.mark.parametrize("dst", [(36, 48), (17, 23), (72, 96)])
    def test_matches_texture_fetch(self, backend, image, dst):
        src = np.asarray(image, dtype=np.float32)
        dh, dw = dst
        plan = backend.make_bilinear_plan(src.shape[0], src.shape[1], dh, dw)
        expected = downscale(Texture2D(src), dw, dh)
        got = plan.apply(src)
        assert got.tobytes() == expected.tobytes()

    def test_out_buffer_reuse_is_identical(self, backend, image):
        src = np.asarray(image, dtype=np.float32)
        plan = backend.make_bilinear_plan(src.shape[0], src.shape[1], 30, 40)
        out = np.empty((30, 40), dtype=np.float32)
        first = plan.apply(src).copy()
        second = plan.apply(src, out=out)
        assert second is out
        assert first.tobytes() == out.tobytes()


class TestIntegralPlan:
    def test_matches_one_shot_integrals(self, backend, image):
        img32 = np.asarray(image, dtype=np.float32)
        plan = backend.make_integral_plan(*img32.shape)
        ii, sqii = plan.compute(img32)
        assert ii.tobytes() == integral_image(img32).tobytes()
        assert sqii.tobytes() == squared_integral_image(img32).tobytes()

    def test_buffers_reused_across_frames(self, backend, image):
        img32 = np.asarray(image, dtype=np.float32)
        plan = backend.make_integral_plan(*img32.shape)
        ii1, _ = plan.compute(img32)
        ii2, _ = plan.compute(img32 * 0.5)
        assert ii2 is ii1  # persistent buffer, recomputed in place
        assert ii1.tobytes() == integral_image(img32 * 0.5).tobytes()

    def test_rejects_non_positive_dims(self, backend):
        with pytest.raises(ConfigurationError):
            backend.make_integral_plan(0, 10)


class TestEvaluatorIdentity:
    def _maps(self, backend_name, image, cascade, sparse_threshold=None):
        img = np.asarray(image, dtype=np.float64)
        mapping = BlockMapping(level_width=img.shape[1], level_height=img.shape[0])
        evaluator = get_backend(backend_name).make_cascade_evaluator(
            cascade, mapping, sparse_threshold=sparse_threshold
        )
        ii = integral_image(img)
        sqii = squared_integral_image(img)
        return evaluator.evaluate(ii, sqii)

    def test_vectorized_matches_reference(self, image):
        cascade = toy_cascade()
        ref = self._maps("reference", image, cascade)
        vec = self._maps("vectorized", image, cascade)
        assert ref.depth_map.tobytes() == vec.depth_map.tobytes()
        assert ref.margin_map.tobytes() == vec.margin_map.tobytes()
        assert ref.sigma_map.tobytes() == vec.sigma_map.tobytes()

    @pytest.mark.parametrize("sparse_threshold", [-1.0, 2.0])
    def test_forced_paths_agree_across_backends(self, image, sparse_threshold):
        # -1.0 keeps every stage dense; 2.0 switches to sparse immediately
        cascade = toy_cascade()
        ref = self._maps("reference", image, cascade, sparse_threshold)
        vec = self._maps("vectorized", image, cascade, sparse_threshold)
        assert ref.depth_map.tobytes() == vec.depth_map.tobytes()
        assert ref.margin_map.tobytes() == vec.margin_map.tobytes()

    def test_kernel_level_identity(self, image):
        cascade = toy_cascade()
        ref = cascade_eval_kernel(image, cascade, stream=1, backend="reference")
        vec = cascade_eval_kernel(image, cascade, stream=1, backend="vectorized")
        assert ref.depth_map.tobytes() == vec.depth_map.tobytes()
        assert ref.score_map.tobytes() == vec.score_map.tobytes()
        np.testing.assert_array_equal(ref.rejections_by_depth, vec.rejections_by_depth)

    def test_vectorized_switches_earlier(self):
        # the structural difference under test: a 0.25 vs 0.04 switch point
        from repro.backend.reference import SPARSE_THRESHOLD
        from repro.backend.vectorized import VEC_SPARSE_THRESHOLD

        assert VEC_SPARSE_THRESHOLD > SPARSE_THRESHOLD
