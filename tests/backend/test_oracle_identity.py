"""Golden cross-backend byte-identity tests.

The backend contract is bit-identity, not tolerance: the ``vectorized``
backend (and any future GPU backend) must reproduce the ``reference``
output byte for byte on real frames — pyramid pixels, integral images,
depth/margin/sigma/score maps, rejection histograms, raw and grouped
detections.  :func:`repro.backend.oracle.compare_backends` checks all of
it; these tests run the differ on the two golden workloads (a synthetic
scene and a trailer frame) plus a multi-frame stream.
"""

import pytest

from repro.backend.oracle import OracleReport, compare_backends
from repro.detect.pipeline import FaceDetectionPipeline, PipelineConfig
from repro.errors import ConfigurationError
from repro.utils.rng import rng_for
from repro.video.synthesis import render_scene
from repro.video.trailer import trailer_frames
from repro.zoo import quick_cascade


@pytest.fixture(scope="module")
def cascade():
    return quick_cascade(seed=0)


@pytest.fixture(scope="module")
def scene_frame():
    frame, _ = render_scene(320, 240, faces=3, rng=rng_for(0, "oracle-scene"))
    return frame


@pytest.fixture(scope="module")
def trailer_frame():
    frame, _ = next(trailer_frames("50/50", 192, 144, n_frames=1, seed=3))
    return frame


def _assert_identical(report):
    assert report.identical, "\n".join(report.mismatches[:20])
    report.raise_on_mismatch()  # must be a no-op when identical


def test_synthetic_scene_identical(cascade, scene_frame):
    report = compare_backends([scene_frame], cascade)
    assert report.backends == ("reference", "vectorized")
    assert report.frames == 1
    _assert_identical(report)


def test_synthetic_scene_has_detections(cascade, scene_frame):
    # guard the golden test against vacuity: the scene must actually
    # produce accepted windows for the byte comparison to mean anything
    pipeline = FaceDetectionPipeline(cascade, config=PipelineConfig(backend="reference"))
    assert len(pipeline.process_frame(scene_frame).raw_detections) > 0


def test_trailer_frame_identical(cascade, trailer_frame):
    _assert_identical(compare_backends([trailer_frame], cascade))


def test_multi_frame_stream_identical(cascade):
    frames = [
        render_scene(128, 96, faces=1, rng=rng_for(0, "oracle-stream", i))[0]
        for i in range(3)
    ]
    report = compare_backends(frames, cascade)
    assert report.frames == 3
    _assert_identical(report)


def test_mismatch_report_raises():
    report = OracleReport(
        backends=("reference", "vectorized"), frames=1, mismatches=["x differs"]
    )
    assert not report.identical
    with pytest.raises(ConfigurationError, match="diverged"):
        report.raise_on_mismatch()


def test_oracle_rejects_single_backend(cascade, scene_frame):
    with pytest.raises(ConfigurationError, match="at least two"):
        compare_backends([scene_frame], cascade, backends=("reference",))
