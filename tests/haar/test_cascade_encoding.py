"""Tests for cascade containers, serialisation, and the 16-bit encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CascadeFormatError
from repro.gpusim.device import GTX470
from repro.haar.cascade import Cascade, Stage, WeakClassifier
from repro.haar.encoding import (
    decode_cascade,
    encode_cascade,
    pack_geometry,
    raw_cascade_bytes,
    unpack_geometry,
)
from repro.haar.enumeration import subsampled_feature_pool
from repro.haar.features import FeatureType, HaarFeature
from repro.haar.opencv_like import (
    OPENCV_FRONTAL_STAGE_SIZES,
    paper_stage_sizes,
    scale_profile,
)
from repro.utils.rng import rng_for


def random_cascade(stage_sizes, seed=0, name="test"):
    rng = rng_for(seed, "random-cascade")
    pool = subsampled_feature_pool(sum(stage_sizes) + 10, seed=seed)
    stages = []
    k = 0
    for size in stage_sizes:
        classifiers = []
        for _ in range(size):
            f = pool[k % len(pool)]
            k += 1
            classifiers.append(
                WeakClassifier(
                    feature=f,
                    threshold=float(rng.normal(0, 50)),
                    left=float(rng.normal(-0.5, 0.2)),
                    right=float(rng.normal(0.5, 0.2)),
                )
            )
        stages.append(Stage(classifiers=tuple(classifiers), threshold=float(rng.normal(0, 1))))
    return Cascade(stages=tuple(stages), name=name)


class TestStageProfiles:
    def test_opencv_profile_totals_2913(self):
        assert sum(OPENCV_FRONTAL_STAGE_SIZES) == 2913
        assert len(OPENCV_FRONTAL_STAGE_SIZES) == 25

    def test_paper_profile_totals_1446(self):
        sizes = paper_stage_sizes()
        assert sum(sizes) == 1446
        assert len(sizes) == 25

    def test_paper_profile_preserves_shape(self):
        sizes = paper_stage_sizes()
        # early stages small, late stages large
        assert sizes[0] < sizes[5] < sizes[-1]
        assert sizes[0] <= 5

    def test_scale_profile_exact_total(self):
        for total in (25, 100, 1446, 2913, 5000):
            assert sum(scale_profile(OPENCV_FRONTAL_STAGE_SIZES, total)) == total

    def test_scale_profile_floor_one(self):
        sizes = scale_profile(OPENCV_FRONTAL_STAGE_SIZES, 25)
        assert all(s >= 1 for s in sizes)

    def test_scale_profile_rejects_too_small(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            scale_profile(OPENCV_FRONTAL_STAGE_SIZES, 10)


class TestCascadeContainer:
    def test_counts(self):
        c = random_cascade([2, 3, 4])
        assert c.num_stages == 3
        assert c.num_weak_classifiers == 9
        assert c.stage_sizes() == [2, 3, 4]

    def test_truncated(self):
        c = random_cascade([2, 3, 4])
        t = c.truncated(2)
        assert t.num_stages == 2
        assert t.num_weak_classifiers == 5

    def test_truncated_bounds(self):
        c = random_cascade([2, 3])
        with pytest.raises(CascadeFormatError):
            c.truncated(0)
        with pytest.raises(CascadeFormatError):
            c.truncated(3)

    def test_empty_stage_rejected(self):
        with pytest.raises(CascadeFormatError):
            Stage(classifiers=(), threshold=0.0)

    def test_empty_cascade_rejected(self):
        with pytest.raises(CascadeFormatError):
            Cascade(stages=())

    def test_json_roundtrip(self, tmp_path):
        c = random_cascade([3, 5, 2], seed=4)
        path = tmp_path / "cascade.json"
        c.save(path)
        loaded = Cascade.load(path)
        assert loaded == c

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(CascadeFormatError):
            Cascade.load(path)

    def test_from_dict_rejects_wrong_version(self):
        data = random_cascade([1]).to_dict()
        data["format_version"] = 99
        with pytest.raises(CascadeFormatError):
            Cascade.from_dict(data)

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(CascadeFormatError):
            Cascade.from_dict({"format_version": 1})


class TestGeometryPacking:
    @given(st.integers(0, 10**6))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_random_features(self, seed):
        pool = subsampled_feature_pool(50, seed=0)
        f = pool[seed % len(pool)]
        assert unpack_geometry(*pack_geometry(f)) == f

    def test_words_are_16bit(self):
        f = HaarFeature(FeatureType.EDGE_V, 1, 22, 11, 1)
        w0, w1 = pack_geometry(f)
        assert 0 <= w0 < 65536 and 0 <= w1 < 65536

    def test_invalid_type_code_rejected(self):
        with pytest.raises(CascadeFormatError):
            unpack_geometry(0x7, 0x21)


class TestEncodedCascade:
    def test_roundtrip_geometry_exact(self):
        c = random_cascade([4, 6], seed=9)
        decoded = decode_cascade(encode_cascade(c))
        for s_orig, s_dec in zip(c.stages, decoded.stages):
            for a, b in zip(s_orig.classifiers, s_dec.classifiers):
                assert a.feature == b.feature

    def test_roundtrip_values_quantised_close(self):
        c = random_cascade([4, 6], seed=9)
        decoded = decode_cascade(encode_cascade(c))
        for s_orig, s_dec in zip(c.stages, decoded.stages):
            assert s_dec.threshold == pytest.approx(s_orig.threshold, abs=1e-3)
            for a, b in zip(s_orig.classifiers, s_dec.classifiers):
                assert b.threshold == pytest.approx(a.threshold, abs=0.02)
                assert b.left == pytest.approx(a.left, abs=1e-3)

    def test_opencv_sized_cascade_fits_packed_not_raw(self):
        # The point of Section III-C: 2913 classifiers exceed 64 KiB raw
        # but fit once packed.
        c = random_cascade(OPENCV_FRONTAL_STAGE_SIZES, seed=1, name="opencv-like")
        enc = encode_cascade(c)
        assert enc.fits(GTX470)
        assert raw_cascade_bytes(c) > GTX470.constant_mem_bytes

    def test_paper_cascade_fits(self):
        c = random_cascade(paper_stage_sizes(), seed=2, name="ours")
        assert encode_cascade(c).fits(GTX470)

    def test_encoded_size_is_ten_bytes_per_classifier_plus_tables(self):
        c = random_cascade([10, 10], seed=3)
        enc = encode_cascade(c)
        # 2x u16 geometry + 3x i16 values = 10 B per classifier
        assert enc.nbytes == 20 * 10 + 2 * (2 + 2) + 12

    def test_stage_structure_preserved(self):
        c = random_cascade([3, 1, 7], seed=5)
        enc = encode_cascade(c)
        assert list(enc.stage_lengths) == [3, 1, 7]
        decoded = decode_cascade(enc)
        assert decoded.stage_sizes() == [3, 1, 7]
