"""Tests for Table I feature enumeration."""

import pytest

from repro.errors import ConfigurationError
from repro.haar.enumeration import (
    TABLE1_EXPECTED,
    axis_slots,
    enumerate_features,
    feature_count,
    full_feature_pool,
    subsampled_feature_pool,
    table1_counts,
)
from repro.haar.features import FeatureType


class TestTableI:
    def test_counts_match_paper_exactly(self):
        assert table1_counts() == TABLE1_EXPECTED

    def test_total_pool_size(self):
        assert len(full_feature_pool()) == sum(TABLE1_EXPECTED.values()) == 103_607

    def test_edge_orientations_symmetric(self):
        assert feature_count(FeatureType.EDGE_H) == feature_count(FeatureType.EDGE_V)

    def test_line_orientations_symmetric(self):
        assert feature_count(FeatureType.LINE_H) == feature_count(FeatureType.LINE_V)

    def test_axis_slot_counts(self):
        # The factorisation behind Table I: 253 / 110 / 63 slots per axis.
        assert len(axis_slots(1)) == 253
        assert len(axis_slots(2)) == 110
        assert len(axis_slots(3)) == 63

    def test_enumeration_matches_closed_form(self):
        for t in FeatureType:
            assert sum(1 for _ in enumerate_features(t)) == feature_count(t)

    def test_all_enumerated_features_valid(self):
        # HaarFeature.__post_init__ validates bounds; enumeration must never
        # produce an out-of-window feature.
        for t in FeatureType:
            for f in enumerate_features(t):
                assert f.x + f.width <= 24
                assert f.y + f.height <= 24

    def test_no_duplicates(self):
        pool = full_feature_pool()
        assert len(set(pool)) == len(pool)

    def test_axis_slots_rejects_bad_sections(self):
        with pytest.raises(ConfigurationError):
            axis_slots(0)


class TestSubsampledPool:
    def test_requested_size_approximate(self):
        pool = subsampled_feature_pool(2000, seed=1)
        assert 1900 <= len(pool) <= 2100

    def test_deterministic(self):
        a = subsampled_feature_pool(500, seed=7)
        b = subsampled_feature_pool(500, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        assert subsampled_feature_pool(500, seed=1) != subsampled_feature_pool(500, seed=2)

    def test_all_families_represented(self):
        pool = subsampled_feature_pool(400, seed=3)
        types = {f.ftype for f in pool}
        assert FeatureType.CENTER_SURROUND in types
        assert FeatureType.DIAGONAL in types
        assert types & {FeatureType.EDGE_H, FeatureType.EDGE_V}

    def test_oversized_request_returns_full_pool(self):
        assert len(subsampled_feature_pool(10**9)) == 103_607

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            subsampled_feature_pool(0)
