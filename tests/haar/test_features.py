"""Tests for Haar feature definitions and evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.haar.features import (
    WINDOW,
    FeatureType,
    HaarFeature,
    feature_projection,
    feature_rects,
    feature_values_at,
    feature_values_grid,
    memory_accesses,
)
from repro.image.integral import integral_image


def brute_force_value(img, feature):
    """Reference: sum weighted rectangles directly over pixels."""
    total = 0.0
    for r in feature_rects(feature):
        total += r.weight * img[r.y : r.y + r.h, r.x : r.x + r.w].sum()
    return total


FEATURES = [
    HaarFeature(FeatureType.EDGE_H, 2, 3, 5, 4),
    HaarFeature(FeatureType.EDGE_V, 1, 1, 6, 10),
    HaarFeature(FeatureType.LINE_H, 4, 2, 7, 3),
    HaarFeature(FeatureType.LINE_V, 2, 5, 4, 9),
    HaarFeature(FeatureType.CENTER_SURROUND, 3, 3, 4, 5),
    HaarFeature(FeatureType.DIAGONAL, 5, 6, 6, 7),
]


class TestFeatureGeometry:
    @pytest.mark.parametrize("feature", FEATURES, ids=lambda f: f.ftype.value)
    def test_rects_inside_bounding_box(self, feature):
        for r in feature_rects(feature):
            assert r.x >= feature.x and r.y >= feature.y
            assert r.x + r.w <= feature.x + feature.width
            assert r.y + r.h <= feature.y + feature.height

    @pytest.mark.parametrize("feature", FEATURES, ids=lambda f: f.ftype.value)
    def test_zero_mean_on_constant_image(self, feature):
        img = np.full((WINDOW, WINDOW), 37.0)
        assert brute_force_value(img, feature) == pytest.approx(0.0, abs=1e-6)

    def test_rect_counts_per_family(self):
        assert len(feature_rects(FEATURES[0])) == 2  # edge
        assert len(feature_rects(FEATURES[2])) == 3  # line
        assert len(feature_rects(FEATURES[4])) == 2  # center-surround
        assert len(feature_rects(FEATURES[5])) == 4  # diagonal

    def test_memory_accesses_match_paper(self):
        # Section III-C: 18 accesses for 2-rectangle, 27 for 3-rectangle.
        assert memory_accesses(FEATURES[0]) == 18
        assert memory_accesses(FEATURES[2]) == 27

    def test_rejects_out_of_window(self):
        with pytest.raises(ConfigurationError):
            HaarFeature(FeatureType.EDGE_H, 20, 20, 5, 5)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ConfigurationError):
            HaarFeature(FeatureType.EDGE_H, 0, 0, 0, 2)

    def test_bounding_dims(self):
        f = HaarFeature(FeatureType.LINE_V, 0, 0, 3, 5)
        assert f.width == 9 and f.height == 5


class TestGridEvaluation:
    @pytest.fixture
    def scene(self):
        rng = np.random.default_rng(11)
        img = rng.uniform(0, 255, (40, 50))
        return img, integral_image(img)

    @pytest.mark.parametrize("feature", FEATURES, ids=lambda f: f.ftype.value)
    def test_grid_matches_brute_force(self, scene, feature):
        img, ii = scene
        grid = feature_values_grid(ii, feature)
        assert grid.shape == (40 - WINDOW + 1, 50 - WINDOW + 1)
        for y, x in [(0, 0), (3, 7), (16, 26)]:
            window = img[y : y + WINDOW, x : x + WINDOW]
            assert grid[y, x] == pytest.approx(brute_force_value(window, feature))

    @pytest.mark.parametrize("feature", FEATURES[:3], ids=lambda f: f.ftype.value)
    def test_sparse_matches_grid(self, scene, feature):
        _, ii = scene
        grid = feature_values_grid(ii, feature)
        ys = np.array([0, 5, 11, 16])
        xs = np.array([0, 9, 3, 26])
        sparse = feature_values_at(ii, feature, ys, xs)
        np.testing.assert_allclose(sparse, grid[ys, xs])

    def test_too_small_image_raises(self):
        ii = integral_image(np.ones((10, 10)))
        with pytest.raises(ConfigurationError):
            feature_values_grid(ii, FEATURES[0])


class TestFeatureProjection:
    @pytest.mark.parametrize("feature", FEATURES, ids=lambda f: f.ftype.value)
    def test_projection_matches_direct_evaluation(self, feature):
        rng = np.random.default_rng(5)
        img = rng.uniform(0, 255, (WINDOW, WINDOW))
        ii = integral_image(img)
        indices, coeffs = feature_projection(feature)
        projected = float(coeffs @ ii.ravel()[indices])
        assert projected == pytest.approx(brute_force_value(img, feature))

    def test_projection_is_compact(self):
        # Corner sharing between adjacent rectangles must be merged.
        f = HaarFeature(FeatureType.EDGE_H, 2, 3, 5, 4)
        indices, coeffs = feature_projection(f)
        assert len(indices) <= 8  # 2 rects x 4 corners, shared edge merged
        assert len(indices) == len(coeffs)
        assert np.all(indices[:-1] < indices[1:])

    @given(st.sampled_from(FEATURES), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_projection_property(self, feature, seed):
        rng = np.random.default_rng(seed)
        img = rng.uniform(0, 255, (WINDOW, WINDOW))
        ii = integral_image(img)
        indices, coeffs = feature_projection(feature)
        assert float(coeffs @ ii.ravel()[indices]) == pytest.approx(
            brute_force_value(img, feature), rel=1e-9, abs=1e-6
        )
