"""Model-zoo subsystem tests: recipes, manifests, store, checkpoints.

The expensive property — interrupted training resumes **byte-identically**
— is verified with a deliberately tiny recipe (3 stages, 80 faces) so the
whole suite trains in seconds while still exercising the real trainer,
the real checkpoint files, and the real store publish path.
"""

import dataclasses
import json

import pytest

from repro.errors import ZooError
from repro.zoo import (
    ModelManifest,
    ModelStore,
    TrainingRecipe,
    cascade_digest,
    parse_ref,
    resolve_model,
    train_model,
)
from repro.zoo.recipes import RECIPES, canonical_json
from repro.zoo.store import default_store
from repro.zoo.training import load_checkpoint

TINY = TrainingRecipe(
    name="tiny",
    stage_sizes=(3, 4, 5),
    algorithm="gentle",
    min_hit_rate=0.99,
    n_faces=80,
    pool_size=200,
)
SEED = 3


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    """One uninterrupted tiny training run into its own store."""
    store = ModelStore(tmp_path_factory.mktemp("zoo-ref"))
    cascade, manifest = train_model(TINY, seed=SEED, store=store)
    return store, cascade, manifest


class TestRecipes:
    def test_digest_is_stable(self):
        assert TINY.digest() == TINY.digest()
        assert TINY.version(SEED) == f"{TINY.digest()[:12]}-s{SEED}"

    def test_any_field_change_mints_a_new_version(self):
        for change in (
            {"min_hit_rate": 0.991},
            {"stage_sizes": (3, 4, 6)},
            {"algorithm": "ada"},
            {"pool_size": 201},
            {"target_stage_fpr": 0.5},
        ):
            altered = dataclasses.replace(TINY, **change)
            assert altered.digest() != TINY.digest(), change
            assert altered.version(SEED) != TINY.version(SEED), change

    def test_seed_is_part_of_the_version_not_the_digest(self):
        assert TINY.version(0) != TINY.version(1)
        assert TINY.version(0).startswith(TINY.digest()[:12])

    def test_roundtrip_preserves_digest(self):
        again = TrainingRecipe.from_dict(json.loads(canonical_json(TINY.to_dict())))
        assert again == TINY
        assert again.digest() == TINY.digest()

    def test_builtin_recipes_validate(self):
        assert set(RECIPES) == {"quick", "quick_baseline", "paper", "opencv_like"}
        for recipe in RECIPES.values():
            assert recipe.digest()

    def test_invalid_recipes_are_rejected(self):
        with pytest.raises(ZooError):
            TrainingRecipe(
                name="x", stage_sizes=(), algorithm="gentle",
                min_hit_rate=0.9, n_faces=1, pool_size=1,
            )
        with pytest.raises(ZooError):
            TrainingRecipe(
                name="x", stage_sizes=(1,), algorithm="brownboost",
                min_hit_rate=0.9, n_faces=1, pool_size=1,
            )


class TestManifest:
    def test_roundtrip(self, trained):
        _, _, manifest = trained
        again = ModelManifest.from_dict(
            json.loads(json.dumps(manifest.to_dict()))
        )
        assert again == manifest

    def test_content_digest_matches_cascade(self, trained):
        _, cascade, manifest = trained
        assert manifest.content_digest == cascade_digest(cascade)
        manifest.verify(cascade)  # must not raise

    def test_verify_rejects_other_bytes(self, trained):
        store, cascade, manifest = trained
        from repro.haar.cascade import Cascade

        truncated = Cascade(stages=cascade.stages[:-1], name=cascade.name)
        with pytest.raises(ZooError, match="digest mismatch"):
            manifest.verify(truncated)

    def test_records_training_provenance(self, trained):
        _, _, manifest = trained
        assert manifest.source == "trained"
        assert manifest.seed == SEED
        assert len(manifest.rounds) == len(TINY.stage_sizes)
        assert 0.0 <= manifest.evaluation["hit_rate"] <= 1.0
        assert 0.0 <= manifest.evaluation["false_accept_rate"] <= 1.0


class TestStore:
    def test_parse_ref(self):
        assert parse_ref("quick") == ("quick", None)
        assert parse_ref("quick@latest") == ("quick", None)
        assert parse_ref("quick@abc-s0") == ("quick", "abc-s0")
        with pytest.raises(ZooError):
            parse_ref("")
        with pytest.raises(ZooError):
            parse_ref("@abc")

    def test_publish_listing_and_latest(self, trained):
        store, _, manifest = trained
        assert store.models() == ["tiny"]
        assert store.versions("tiny") == [manifest.version]
        assert store.latest("tiny") == manifest.version
        assert store.has("tiny", manifest.version)

    def test_load_verifies_digest(self, trained, tmp_path):
        store, cascade, manifest = trained
        loaded, again = store.load("tiny")
        assert cascade_digest(loaded) == manifest.content_digest
        assert again == manifest

    def test_tampered_cascade_fails_to_load(self, trained, tmp_path):
        store, cascade, manifest = trained
        copy = ModelStore(tmp_path / "tampered")
        copy.publish(cascade, manifest)
        target = copy.version_dir("tiny", manifest.version) / "cascade.json"
        payload = json.loads(target.read_text())
        payload["stages"][0]["threshold"] = 123.0
        target.write_text(json.dumps(payload))
        with pytest.raises(ZooError, match="digest mismatch"):
            copy.load("tiny")

    def test_unknown_refs_raise(self, trained):
        store, _, _ = trained
        with pytest.raises(ZooError):
            store.resolve("tiny@no-such-version")
        with pytest.raises(ZooError):
            store.resolve("nonexistent-model")

    def test_gc_keeps_only_latest(self, trained, tmp_path):
        store, cascade, manifest = trained
        scratch = ModelStore(tmp_path / "gc")
        older = dataclasses.replace(manifest, version="000000000000-s9")
        scratch.publish(cascade, older)
        scratch.publish(cascade, manifest)  # publishes + moves `latest`
        assert scratch.latest("tiny") == manifest.version
        removed = scratch.gc()
        assert removed == ["tiny@000000000000-s9"]
        assert scratch.versions("tiny") == [manifest.version]
        assert scratch.gc() == []

    def test_publish_is_idempotent(self, trained, tmp_path):
        store, cascade, manifest = trained
        scratch = ModelStore(tmp_path / "idem")
        first = scratch.publish(cascade, manifest)
        before = (first / "cascade.json").read_bytes()
        second = scratch.publish(cascade, manifest)
        assert first == second
        assert (second / "cascade.json").read_bytes() == before


class TestCheckpointResume:
    def test_interrupted_training_resumes_byte_identically(self, trained, tmp_path):
        """The headline guarantee: kill -9 mid-train loses nothing."""
        ref_store, _, manifest = trained
        reference = (
            ref_store.version_dir("tiny", manifest.version) / "cascade.json"
        ).read_bytes()

        store = ModelStore(tmp_path / "interrupted")

        class Interrupt(Exception):
            pass

        seen: list[int] = []

        def bomb(state):
            seen.append(state.next_stage)
            if state.next_stage == 2:  # two stages durable, one to go
                raise Interrupt

        with pytest.raises(Interrupt):
            train_model(TINY, seed=SEED, store=store, on_stage=bomb)
        assert seen == [1, 2]
        assert not store.has("tiny", manifest.version)

        ckpt_dir = store.checkpoint_dir("tiny", manifest.version)
        state = load_checkpoint(ckpt_dir, TINY, SEED, manifest.version)
        assert state is not None and state.next_stage == 2

        resumed_stages: list[int] = []
        cascade, resumed = train_model(
            TINY, seed=SEED, store=store,
            on_stage=lambda s: resumed_stages.append(s.next_stage),
        )
        assert resumed_stages == [3], "only the unfinished stage may retrain"
        published = (
            store.version_dir("tiny", manifest.version) / "cascade.json"
        ).read_bytes()
        assert published == reference
        assert resumed.content_digest == manifest.content_digest
        assert not ckpt_dir.exists(), "checkpoints are dropped after publish"

    def test_stale_checkpoint_is_discarded(self, tmp_path):
        store = ModelStore(tmp_path / "stale")
        version = TINY.version(SEED)

        class Interrupt(Exception):
            pass

        def bomb(state):
            raise Interrupt

        with pytest.raises(Interrupt):
            train_model(TINY, seed=SEED, store=store, on_stage=bomb)
        ckpt_dir = store.checkpoint_dir("tiny", version)
        assert ckpt_dir.is_dir()
        # a different seed or recipe must refuse to resume from it
        assert load_checkpoint(ckpt_dir, TINY, SEED + 1, version) is None
        assert not ckpt_dir.exists()

    def test_no_resume_discards_the_checkpoint(self, tmp_path):
        store = ModelStore(tmp_path / "noresume")
        version = TINY.version(SEED)

        class Interrupt(Exception):
            pass

        def bomb(state):
            raise Interrupt

        with pytest.raises(Interrupt):
            train_model(TINY, seed=SEED, store=store, on_stage=bomb)
        stages: list[int] = []
        train_model(
            TINY, seed=SEED, store=store, resume=False,
            on_stage=lambda s: stages.append(s.next_stage),
        )
        assert stages == [1, 2, 3], "resume=False must start from stage 1"


class TestResolveAndCompat:
    def test_resolve_model_from_path(self, trained, tmp_path):
        _, cascade, _ = trained
        path = tmp_path / "exported.json"
        cascade.save(path)
        loaded, manifest = resolve_model(str(path))
        assert manifest is None
        assert cascade_digest(loaded) == cascade_digest(cascade)
        with pytest.raises(ZooError):
            resolve_model(str(tmp_path / "missing.json"))

    def test_resolve_model_from_store_ref(self, trained):
        store, cascade, manifest = trained
        loaded, again = resolve_model(f"tiny@{manifest.version}", store=store)
        assert again == manifest
        loaded, again = resolve_model("tiny", store=store)
        assert again.version == manifest.version

    def test_legacy_flat_cache_blob_is_adopted_byte_identically(
        self, trained, tmp_path, monkeypatch
    ):
        """Pre-zoo cached cascades publish as backfilled, not retrained."""
        from repro.haar.cascade import Cascade
        from repro.zoo import load_or_train
        from repro.zoo.recipes import LEGACY_CACHE_NAMES

        ref_store, cascade, manifest = trained
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "flat-cache"))
        monkeypatch.setitem(LEGACY_CACHE_NAMES, "tiny", "tiny-legacy-r4-{seed}")
        # the legacy blob carries the old cache-key name inside the JSON
        from repro.utils.artifacts import artifact_dir

        legacy = Cascade(
            stages=cascade.stages,
            name=f"tiny-legacy-r4-{SEED}",
            window=cascade.window,
            meta=dict(cascade.meta),
        )
        legacy.save(artifact_dir() / f"tiny-legacy-r4-{SEED}.cascade.json")

        store = ModelStore(tmp_path / "adopting")
        adopted, adopted_manifest = load_or_train(TINY, seed=SEED, store=store)
        assert adopted_manifest.source == "backfilled"
        assert adopted_manifest.content_digest == manifest.content_digest
        published = (
            store.version_dir("tiny", manifest.version) / "cascade.json"
        ).read_bytes()
        reference = (
            ref_store.version_dir("tiny", manifest.version) / "cascade.json"
        ).read_bytes()
        assert published == reference

    def test_compat_shim_exports_survive(self):
        """`from repro.zoo import paper_cascade` keeps working."""
        from repro.zoo import (  # noqa: F401
            QUICK_STAGE_SIZES,
            opencv_like_cascade,
            paper_cascade,
            quick_baseline_cascade,
            quick_cascade,
        )

        assert QUICK_STAGE_SIZES == (4, 6, 8, 10, 12, 14, 16, 18, 22, 26, 30, 34)
        assert callable(quick_cascade) and callable(paper_cascade)

    def test_default_store_honours_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_store().root == tmp_path / "zoo"
