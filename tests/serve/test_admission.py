"""Admission-control unit tests: bounds, tickets, and shed accounting."""

import pytest

from repro.errors import ConfigurationError, RequestSheddedError
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionConfig, AdmissionController


class TestBounds:
    def test_concurrency_bound_sheds(self):
        ctl = AdmissionController(AdmissionConfig(max_concurrency=2, max_queue=100))
        ctl.try_admit(0)
        ctl.try_admit(0)
        with pytest.raises(RequestSheddedError) as err:
            ctl.try_admit(0)
        assert err.value.reason == "concurrency"
        assert err.value.retry_after_s > 0

    def test_queue_bound_sheds(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=4))
        with pytest.raises(RequestSheddedError) as err:
            ctl.try_admit(queue_depth=4)
        assert err.value.reason == "queue"

    def test_release_frees_a_slot(self):
        ctl = AdmissionController(AdmissionConfig(max_concurrency=1))
        ctl.try_admit(0)
        ctl.release()
        ctl.try_admit(0)  # would raise if the slot leaked

    def test_unmatched_release_is_an_error(self):
        ctl = AdmissionController()
        with pytest.raises(ConfigurationError):
            ctl.release()

    def test_config_validation(self):
        for bad in (
            AdmissionConfig(max_queue=0),
            AdmissionConfig(max_concurrency=0),
            AdmissionConfig(queue_budget_s=0.0),
            AdmissionConfig(retry_after_s=-1.0),
        ):
            with pytest.raises(ConfigurationError):
                AdmissionController(bad)


class TestTicket:
    def test_deadline_from_budget(self):
        ctl = AdmissionController(AdmissionConfig(queue_budget_s=0.25))
        ticket = ctl.try_admit(0)
        assert ticket.budget_s == 0.25
        assert not ticket.expired(ticket.enqueued_pc)
        assert ticket.expired(ticket.enqueued_pc + 0.3)
        assert ticket.waited_s(ticket.enqueued_pc + 0.1) == pytest.approx(0.1)


class TestAccounting:
    def test_shed_counters_and_stats_block(self):
        metrics = MetricsRegistry()
        ctl = AdmissionController(
            AdmissionConfig(max_queue=1, max_concurrency=1), metrics=metrics
        )
        ctl.try_admit(0)
        for _ in range(3):
            with pytest.raises(RequestSheddedError):
                ctl.try_admit(0)
        ctl.record_deadline_shed()
        ctl.release()
        with pytest.raises(RequestSheddedError):
            ctl.try_admit(queue_depth=1)

        stats = ctl.to_dict()
        assert stats["admitted"] == 1
        assert stats["inflight"] == 0
        assert stats["shed"] == {"queue": 1, "concurrency": 3, "deadline": 1}
        assert stats["limits"]["max_queue"] == 1

        counters = metrics.snapshot()["counters"]
        assert counters["serve.admitted"] == 1
        assert counters["serve.shed.concurrency"] == 3
        assert counters["serve.shed.queue"] == 1
        assert counters["serve.shed.deadline"] == 1
