"""Hot-swap tests: EngineSlot atomicity and the server's swap endpoints.

The server-level tests swap the live ``quick`` model to an exported
cascade *file* (version tag ``quick@file``) — same code path as a zoo
version flip, none of the training cost — while concurrent requests are
in flight, and assert the zero-downtime contract: every request answers
200, ``/readyz`` never leaves 200, and the serving version tag flips in
responses, ``/stats`` and ``GET /v1/models``.
"""

import asyncio
import io
import json
from concurrent.futures import Future
from types import SimpleNamespace

import pytest

from repro.detect.swap import EngineSlot
from repro.serve.loadgen import _Connection, build_payloads
from repro.serve.server import DetectionServer, ServerConfig

JSON = "application/json"


class FakeEngine:
    def __init__(self, tag):
        self.tag = tag
        self.drained = False
        self.closed = False

    def submit_batch(self, lumas, traces=None):
        futures = []
        for luma in lumas:
            f = Future()
            f.set_result(SimpleNamespace(frame=luma, engine=self.tag))
            futures.append(f)
        return futures

    def drain(self):
        self.drained = True

    def close(self):
        self.closed = True


class TestEngineSlot:
    def test_infer_stamps_the_serving_version(self):
        slot = EngineSlot(FakeEngine("a"), "m@1")
        results = slot.infer([1, 2])
        assert [r.model_version for r in results] == ["m@1", "m@1"]
        assert all(r.engine == "a" for r in results)

    def test_swap_returns_old_engine_and_bumps_generation(self):
        first, second = FakeEngine("a"), FakeEngine("b")
        slot = EngineSlot(first, "m@1")
        assert slot.generation == 0
        old = slot.swap(second, "m@2")
        assert old is first
        assert slot.engine is second
        assert slot.model_version == "m@2"
        assert slot.generation == 1
        engine, version, generation = slot.current()
        assert (engine, version, generation) == (second, "m@2", 1)

    def test_results_pair_with_the_engine_that_served_them(self):
        slot = EngineSlot(FakeEngine("a"), "m@1")
        before = slot.infer([0])
        slot.swap(FakeEngine("b"), "m@2")
        after = slot.infer([0])
        assert (before[0].engine, before[0].model_version) == ("a", "m@1")
        assert (after[0].engine, after[0].model_version) == ("b", "m@2")


def serve(config: ServerConfig | None = None):
    """Same harness as test_server: run ``fn(server, conn)`` live."""

    def runner(fn):
        async def drive():
            server = DetectionServer(
                config
                or ServerConfig(port=0, model="quick", workers=1, max_batch=2),
                log_stream=io.StringIO(),
            )
            await server.start()
            conn = _Connection("127.0.0.1", server.port)
            try:
                return await fn(server, conn)
            finally:
                conn.close()
                await server.drain()

        return asyncio.run(drive())

    return runner


@pytest.fixture(scope="module")
def payloads():
    return build_payloads(width=96, height=96, frames=2, faces=1, seed=0)


@pytest.fixture(scope="module")
def exported_quick(tmp_path_factory):
    """The quick cascade exported as a plain file — a swap target with a
    distinct version tag (``quick@file``) and zero training cost."""
    from repro.zoo import resolve_model

    cascade, _ = resolve_model("quick")
    path = tmp_path_factory.mktemp("swap-target") / "exported-quick.json"
    cascade.save(path)
    return path


class TestServerSwap:
    def test_swap_under_live_load_drops_nothing(self, payloads, exported_quick):
        swap_body = json.dumps({"model": str(exported_quick)}).encode()

        @serve()
        async def outcome(server, conn):
            async def fetch():
                c = _Connection("127.0.0.1", server.port)
                try:
                    return await c.request("POST", "/v1/detect", *payloads[0])
                finally:
                    c.close()

            probe = _Connection("127.0.0.1", server.port)
            steady = await fetch()
            inflight = [asyncio.ensure_future(fetch()) for _ in range(8)]
            ready_before = await probe.request("GET", "/readyz")
            swapped = await conn.request(
                "POST", "/v1/models/swap", swap_body, JSON
            )
            ready_after = await probe.request("GET", "/readyz")
            during = await asyncio.gather(*inflight)
            after = await asyncio.gather(*(fetch() for _ in range(4)))
            stats = await conn.request("GET", "/stats")
            models = await conn.request("GET", "/v1/models")
            probe.close()
            return steady, swapped, ready_before, ready_after, during, after, stats, models

        steady, swapped, ready_before, ready_after, during, after, stats, models = (
            outcome
        )
        assert steady[0] == 200
        assert json.loads(steady[1])["model_version"].startswith("quick@")

        assert swapped[0] == 200, swapped[1]
        summary = json.loads(swapped[1])
        assert summary["swapped"] is True
        assert summary["serving"] == "quick@file"
        assert summary["previous"].startswith("quick@")
        assert summary["previous"] != "quick@file"

        # zero downtime: every concurrent request answered, readiness held
        assert ready_before[0] == 200 and ready_after[0] == 200
        assert all(status == 200 for status, _ in during)
        for status, body in after:
            assert status == 200
            assert json.loads(body)["model_version"] == "quick@file"

        snap = json.loads(stats[1])
        assert snap["serve"]["model"]["version_tag"] == "quick@file"
        assert snap["serve"]["model"]["swaps"] == 1
        assert snap["serve"]["model"]["state"] == "serving"
        assert snap["model"]["version_tag"] == "quick@file"

        listing = json.loads(models[1])
        assert listing["current"]["version_tag"] == "quick@file"
        assert "quick" in listing["available"]

    def test_unknown_model_is_400_and_serving_is_untouched(self, payloads):
        bad = json.dumps({"model": "no-such-model"}).encode()

        @serve()
        async def outcome(server, conn):
            refused = await conn.request("POST", "/v1/models/swap", bad, JSON)
            answer = await conn.request("POST", "/v1/detect", *payloads[0])
            stats = await conn.request("GET", "/stats")
            return refused, answer, stats

        refused, answer, stats = outcome
        assert refused[0] == 400
        assert json.loads(refused[1])["error"]
        assert answer[0] == 200
        snap = json.loads(stats[1])
        assert snap["serve"]["model"]["version_tag"].startswith("quick@")
        assert snap["serve"]["model"]["swaps"] == 0

    def test_concurrent_swap_is_409(self, exported_quick):
        swap_body = json.dumps({"model": str(exported_quick)}).encode()

        @serve()
        async def outcome(server, conn):
            server._manager._swap_in_flight = True  # a swap is mid-phase
            try:
                busy = await conn.request(
                    "POST", "/v1/models/swap", swap_body, JSON
                )
            finally:
                server._manager._swap_in_flight = False
            return busy

        status, body = outcome
        assert status == 409
        assert "in flight" in json.loads(body)["error"]

    def test_get_swap_is_405(self):
        @serve()
        async def outcome(server, conn):
            return await conn.request("GET", "/v1/models/swap")

        assert outcome[0] == 405

    def test_sighup_reload_is_a_noop_when_latest_is_unchanged(self):
        @serve()
        async def outcome(server, conn):
            before = server._manager.info()
            result = await server.reload_model()
            return before, result, server._manager.info()

        before, result, after = outcome
        assert result is None
        assert after["version_tag"] == before["version_tag"]
        assert after["swaps"] == 0

    def test_old_engine_is_retired_after_swap(self, exported_quick):
        swap_body = json.dumps({"model": str(exported_quick)}).encode()

        @serve()
        async def outcome(server, conn):
            old_engine = server._engine
            status, _ = await conn.request(
                "POST", "/v1/models/swap", swap_body, JSON
            )
            return status, old_engine, server._engine

        status, old_engine, new_engine = outcome
        assert status == 200
        assert new_engine is not old_engine
