"""Protocol unit tests: parsing, encoding, and frame payload decoding.

The serving contract is that *no* malformed client input ever surfaces
as a 500 — every parse failure must raise
:class:`~repro.errors.BadRequestError` with a 4xx (or 501/505) status
the server can return verbatim.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.errors import BadRequestError
from repro.serve.protocol import (
    HttpRequest,
    decode_frame,
    detections_payload,
    encode_response,
    json_body,
    read_request,
)
from repro.video.pnm import encode_pgm, parse_pnm


def parse(raw: bytes, max_body_bytes: int = 1 << 20):
    """Drive the asyncio parser over an in-memory byte buffer."""

    async def drive():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body_bytes=max_body_bytes)

    return asyncio.run(drive())


def request_with(body: bytes, content_type: str) -> HttpRequest:
    return HttpRequest(
        method="POST",
        target="/v1/detect",
        version="HTTP/1.1",
        headers={"content-type": content_type, "content-length": str(len(body))},
        body=body,
    )


class TestReadRequest:
    def test_round_trip(self):
        raw = (
            b"POST /v1/detect?x=1 HTTP/1.1\r\n"
            b"Host: localhost\r\nContent-Type: application/json\r\n"
            b"Content-Length: 2\r\n\r\n{}"
        )
        req = parse(raw)
        assert req.method == "POST"
        assert req.path == "/v1/detect"
        assert req.content_type == "application/json"
        assert req.body == b"{}"
        assert req.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_garbled_request_line_is_400(self):
        with pytest.raises(BadRequestError) as err:
            parse(b"NOT-HTTP\r\n\r\n")
        assert err.value.status == 400

    def test_http10_version_gate(self):
        with pytest.raises(BadRequestError) as err:
            parse(b"GET / SPDY/3\r\n\r\n")
        assert err.value.status == 505

    def test_oversized_headers_431(self):
        raw = b"GET / HTTP/1.1\r\n" + b"X-Pad: " + b"y" * 20000 + b"\r\n\r\n"
        with pytest.raises(BadRequestError) as err:
            parse(raw)
        assert err.value.status == 431

    def test_chunked_transfer_is_501(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(BadRequestError) as err:
            parse(raw)
        assert err.value.status == 501

    def test_bad_content_length_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
        with pytest.raises(BadRequestError) as err:
            parse(raw)
        assert err.value.status == 400

    def test_oversized_body_413_without_reading_it(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
        with pytest.raises(BadRequestError) as err:
            parse(raw, max_body_bytes=1024)
        assert err.value.status == 413

    def test_truncated_body_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        with pytest.raises(BadRequestError) as err:
            parse(raw)
        assert err.value.status == 400

    def test_connection_close_disables_keep_alive(self):
        raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        assert parse(raw).keep_alive is False

    def test_http10_defaults_to_close(self):
        assert parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive is False


class TestEncodeResponse:
    def test_has_content_length_and_connection(self):
        raw = encode_response(200, b'{"a": 1}\n')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 9" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"a": 1}\n'

    def test_extra_headers_and_close(self):
        raw = encode_response(
            429, b"{}", keep_alive=False, extra_headers={"Retry-After": "1"}
        )
        assert b"Retry-After: 1" in raw
        assert b"Connection: close" in raw


class TestDecodeFrame:
    def test_pgm_round_trip(self):
        frame = (np.arange(48 * 64, dtype=np.float32) % 251).reshape(48, 64)
        decoded = decode_frame(
            request_with(encode_pgm(frame), "application/octet-stream")
        )
        np.testing.assert_array_equal(decoded, frame)

    def test_empty_body_411(self):
        with pytest.raises(BadRequestError) as err:
            decode_frame(request_with(b"", "application/octet-stream"))
        assert err.value.status == 411

    def test_malformed_pnm_is_4xx_not_500(self):
        with pytest.raises(BadRequestError) as err:
            decode_frame(request_with(b"P5 busted", "application/octet-stream"))
        assert 400 <= err.value.status < 500

    def test_truncated_pixels_is_4xx(self):
        body = b"P5 64 48 255\n" + b"\x00" * 10
        with pytest.raises(BadRequestError):
            decode_frame(request_with(body, "application/octet-stream"))

    def test_tiny_frame_rejected(self):
        body = encode_pgm(np.zeros((8, 8), dtype=np.float32))
        with pytest.raises(BadRequestError):
            decode_frame(request_with(body, "application/octet-stream"))

    def test_unknown_content_type_415(self):
        with pytest.raises(BadRequestError) as err:
            decode_frame(request_with(b"GIF89a...", "image/gif"))
        assert err.value.status == 415

    def test_bad_json_400(self):
        with pytest.raises(BadRequestError):
            decode_frame(request_with(b"{nope", "application/json"))

    def test_json_reference_validation(self):
        for spec in (
            {"source": "teapot"},
            {"source": "synthetic"},  # missing width/height
            {"source": "synthetic", "width": 9999, "height": 96},
            {"source": "synthetic", "width": 96, "height": 96, "frame": -1},
            {"source": "trailer", "width": 96, "height": 96, "trailer": "nope"},
        ):
            with pytest.raises(BadRequestError):
                decode_frame(
                    request_with(json.dumps(spec).encode(), "application/json")
                )

    def test_synthetic_reference_matches_stream(self):
        from repro.video.stream import synthetic_stream

        spec = {
            "source": "synthetic",
            "width": 96,
            "height": 64,
            "frame": 3,
            "faces": 2,
            "seed": 7,
        }
        rendered = decode_frame(
            request_with(json.dumps(spec).encode(), "application/json")
        )
        packets = list(synthetic_stream(96, 64, 4, faces=2, seed=7))
        np.testing.assert_array_equal(rendered, packets[3].luma)

    def test_trailer_reference_matches_trailer_frames(self):
        from repro.video.trailer import trailer_frames

        spec = {
            "source": "trailer",
            "trailer": "50/50",
            "width": 96,
            "height": 64,
            "frame": 2,
            "seed": 1,
        }
        rendered = decode_frame(
            request_with(json.dumps(spec).encode(), "application/json")
        )
        frames = [f for f, _ in trailer_frames("50/50", 96, 64, 3, seed=1)]
        np.testing.assert_array_equal(rendered, frames[2])


class TestDetectionsPayload:
    def test_matches_face_detector_grouping(self):
        from repro import FaceDetector
        from repro.video.stream import synthetic_stream

        packet = next(iter(synthetic_stream(96, 96, 1, faces=2, seed=3)))
        detector = FaceDetector.pretrained("quick", seed=0)
        direct = detector.detect(packet.luma)
        result = detector.pipeline.process_frame(packet.luma)
        payload = detections_payload(result)
        assert payload["raw_count"] == direct.raw_count
        assert [
            (d["x"], d["y"], d["size"], d["score"]) for d in payload["detections"]
        ] == [(d.x, d.y, d.size, d.score) for d in direct.detections]
        # the payload must survive a JSON round trip bit-exactly (the
        # byte-identity contract rides on shortest-roundtrip float repr)
        assert json.loads(json_body(payload)) == payload


def test_parse_pnm_ppm_luma_conversion():
    rgb = np.zeros((48, 48, 3), dtype=np.uint8)
    rgb[:, :, 1] = 100
    body = b"P6 48 48 255\n" + rgb.tobytes()
    luma = parse_pnm(body)
    assert luma.shape == (48, 48)
    np.testing.assert_allclose(luma, np.float32(0.587 * 100))
