"""End-to-end service tests over real loopback sockets.

Every test drives a live :class:`~repro.serve.server.DetectionServer`
(port 0, quick cascade) through the stdlib client from
:mod:`repro.serve.loadgen` — the same path ``repro loadtest`` uses — so
the request lifecycle, admission behaviour and lifecycle endpoints are
exercised exactly as a network client sees them.
"""

import asyncio
import io
import json

import numpy as np
import pytest

from repro.serve.loadgen import _Connection, build_payloads, run_loadtest
from repro.serve.server import DetectionServer, ServerConfig
from repro.serve.admission import AdmissionConfig
from repro.video.pnm import encode_pgm

PGM = "application/octet-stream"


def serve(config: ServerConfig | None = None):
    """Decorator-free harness: run ``fn(server, conn)`` against a live server."""

    def runner(fn):
        async def drive():
            server = DetectionServer(
                config
                or ServerConfig(port=0, cascade="quick", workers=1, max_batch=4),
                log_stream=io.StringIO(),  # keep test output clean
            )
            await server.start()
            conn = _Connection("127.0.0.1", server.port)
            try:
                return await fn(server, conn)
            finally:
                conn.close()
                await server.drain()

        return asyncio.run(drive())

    return runner


@pytest.fixture(scope="module")
def payloads():
    return build_payloads(width=96, height=96, frames=2, faces=1, seed=0)


class TestRouting:
    def test_health_ready_metrics_stats(self, payloads):
        @serve()
        async def outcome(server, conn):
            results = {}
            for path in ("/healthz", "/readyz", "/metrics"):
                results[path] = await conn.request("GET", path)
            results["detect"] = await conn.request("POST", "/v1/detect", *payloads[0])
            results["/stats"] = await conn.request("GET", "/stats")
            results["nowhere"] = await conn.request("GET", "/nowhere")
            return results

        assert outcome["/healthz"][0] == 200
        assert outcome["/readyz"][0] == 200
        assert outcome["detect"][0] == 200
        body = json.loads(outcome["detect"][1])
        assert set(body) == {
            "detections", "raw_count", "simulated_detection_s",
            "trace_id", "timing", "model_version",
        }
        assert body["model_version"].startswith("quick@")
        metrics = json.loads(outcome["/metrics"][1])
        assert "counters" in metrics and "histograms" in metrics
        stats = json.loads(outcome["/stats"][1])
        assert stats["serve"]["state"] == "ready"
        assert stats["serve"]["admission"]["admitted"] >= 1
        assert stats["serve"]["batcher"]["max_batch"] == 4
        assert outcome["nowhere"][0] == 404

    def test_wrong_method_is_405_with_allow(self, payloads):
        @serve()
        async def outcome(server, conn):
            get_detect = await conn.request("GET", "/v1/detect")
            post_health = await conn.request("POST", "/healthz", b"x", "text/plain")
            return get_detect, post_health

        (status, body), (status2, _) = outcome
        assert status == 405
        assert status2 == 405

    def test_client_errors_are_4xx_never_500(self, payloads):
        cases = [
            (b"", PGM, 411),  # empty body
            (b"P5 busted", PGM, 400),  # malformed PNM header
            (b"P5 64 48 255\n" + b"\x00" * 4, PGM, 400),  # truncated pixels
            (b"{not json", "application/json", 400),
            (b'{"source": "warp-drive"}', "application/json", 400),
            (b"data", "image/gif", 415),
        ]

        @serve()
        async def outcome(server, conn):
            results = []
            for body, ctype, _ in cases:
                results.append(await conn.request("POST", "/v1/detect", body, ctype))
            # the connection must still work after every client error
            results.append(await conn.request("POST", "/v1/detect", *payloads[0]))
            return results

        for (status, body), (_, _, want) in zip(outcome[:-1], cases):
            assert status == want, body
            assert json.loads(body)["error"]
        assert outcome[-1][0] == 200

    def test_oversized_body_is_413(self):
        config = ServerConfig(
            port=0, cascade="quick", workers=0, max_batch=2, max_body_bytes=4096
        )

        @serve(config)
        async def outcome(server, conn):
            big = encode_pgm(np.zeros((128, 128), dtype=np.float32))
            return await conn.request("POST", "/v1/detect", big, PGM)

        status, body = outcome
        assert status == 413
        assert b"4096" in body


class TestIdentity:
    def test_responses_byte_identical_to_direct_pipeline(self, payloads):
        """The serving contract: batching must not perturb detections."""
        from repro.serve.protocol import (
            HttpRequest,
            decode_frame,
            detections_payload,
            json_body,
        )
        from repro.serve.server import _build_pipeline
        from repro.obs.tracer import NULL_TRACER

        pipeline = _build_pipeline("quick", None, NULL_TRACER)
        expected = []
        for body, ctype in payloads:
            request = HttpRequest(
                method="POST",
                target="/v1/detect",
                version="HTTP/1.1",
                headers={"content-type": ctype},
                body=body,
            )
            result = pipeline.process_frame(decode_frame(request))
            expected.append(json_body(detections_payload(result)))

        @serve()
        async def outcome(server, conn):
            # fire all payloads concurrently so they coalesce into real
            # batches, interleaved twice to shuffle completion order
            async def fetch(payload):
                c = _Connection("127.0.0.1", server.port)
                try:
                    return await c.request("POST", "/v1/detect", *payload)
                finally:
                    c.close()

            doubled = list(payloads) * 2
            return await asyncio.gather(*(fetch(p) for p in doubled))

        for (status, got), want in zip(outcome, expected * 2):
            assert status == 200
            # the detection content must be byte-for-byte identical once
            # the per-request additions (trace_id, timing) are stripped
            payload = json.loads(got)
            subset = {
                k: payload[k]
                for k in ("detections", "raw_count", "simulated_detection_s")
            }
            assert json_body(subset) == want

    def test_json_reference_matches_direct_pipeline(self):
        """A frame reference answers exactly like the pipeline on the
        renderer's float frame (no PGM quantisation on this path)."""
        from repro.obs.tracer import NULL_TRACER
        from repro.serve.protocol import detections_payload, json_body
        from repro.serve.server import _build_pipeline
        from repro.video.stream import synthetic_stream

        packet = next(iter(synthetic_stream(96, 96, 1, faces=1, seed=4)))
        pipeline = _build_pipeline("quick", None, NULL_TRACER)
        want = json_body(detections_payload(pipeline.process_frame(packet.luma)))
        ref = (
            json.dumps(
                {
                    "source": "synthetic",
                    "width": 96,
                    "height": 96,
                    "frame": 0,
                    "faces": 1,
                    "seed": 4,
                }
            ).encode(),
            "application/json",
        )

        @serve()
        async def outcome(server, conn):
            return await conn.request("POST", "/v1/detect", *ref)

        status, got = outcome
        assert status == 200
        payload = json.loads(got)
        subset = {
            k: payload[k]
            for k in ("detections", "raw_count", "simulated_detection_s")
        }
        assert json_body(subset) == want


class TestAdmission:
    def test_full_queue_burst_returns_429_not_hang_not_500(self, payloads):
        config = ServerConfig(
            port=0,
            cascade="quick",
            workers=0,
            max_batch=1,
            admission=AdmissionConfig(max_queue=1, max_concurrency=2),
        )

        @serve(config)
        async def outcome(server, conn):
            async def fire():
                c = _Connection("127.0.0.1", server.port)
                try:
                    return await c.request("POST", "/v1/detect", *payloads[0])
                finally:
                    c.close()

            results = await asyncio.gather(*(fire() for _ in range(12)))
            stats = json.loads((await conn.request("GET", "/stats"))[1])
            return results, stats

        results, stats = outcome
        statuses = sorted(status for status, _ in results)
        assert set(statuses) <= {200, 429}
        assert statuses.count(429) >= 1, "burst over the bound must shed"
        assert statuses.count(200) >= 1, "the admitted requests must finish"
        for status, body in results:
            if status == 429:
                payload = json.loads(body)
                assert payload["reason"] in ("queue", "concurrency", "deadline")
                assert payload["retry_after_s"] > 0
        shed = stats["serve"]["admission"]["shed"]
        assert sum(shed.values()) == statuses.count(429)

    def test_retry_after_header_on_429(self):
        config = ServerConfig(
            port=0,
            cascade="quick",
            workers=0,
            max_batch=1,
            admission=AdmissionConfig(max_concurrency=1, retry_after_s=0.2),
        )
        # a big frame keeps the single admission slot busy long enough
        # that the raced request deterministically sheds
        slow = encode_pgm(np.zeros((256, 256), dtype=np.float32))

        def head(body: bytes) -> bytes:
            return (
                "POST /v1/detect HTTP/1.1\r\n"
                "Content-Type: application/octet-stream\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()

        @serve(config)
        async def outcome(server, conn):
            first_r, first_w = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            first_w.write(head(slow) + slow)
            await first_w.drain()
            await asyncio.sleep(0.02)  # the slot is now held
            raced_r, raced_w = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            raced_w.write(head(slow) + slow)
            await raced_w.drain()
            raced_head = await raced_r.readuntil(b"\r\n\r\n")
            first_head = await first_r.readuntil(b"\r\n\r\n")
            first_w.close()
            raced_w.close()
            return first_head, raced_head

        first_head, raced_head = outcome
        assert b" 200 " in first_head.split(b"\r\n")[0]
        assert b" 429 " in raced_head.split(b"\r\n")[0]
        assert b"Retry-After: 1" in raced_head  # ceil(0.2s) -> 1s


class TestLifecycle:
    def test_readyz_flips_during_drain_and_inflight_finishes(self):
        """K8s ordering: /readyz answers 503 while admitted work drains."""
        slow = (encode_pgm(np.zeros((256, 256), dtype=np.float32)), PGM)

        @serve()
        async def outcome(server, conn):
            before = await conn.request("GET", "/readyz")
            inflight = asyncio.ensure_future(
                conn.request("POST", "/v1/detect", *slow)
            )
            await asyncio.sleep(0.02)  # the detect now holds a busy slot
            drain = asyncio.ensure_future(server.drain())
            await asyncio.sleep(0)  # drain flips the state, then waits
            second = _Connection("127.0.0.1", server.port)
            during_ready = await second.request("GET", "/readyz")
            during_detect = await second.request("POST", "/v1/detect", *slow)
            second.close()
            finished = await inflight
            await drain
            return before, during_ready, during_detect, finished

        before, during_ready, during_detect, finished = outcome
        assert before[0] == 200
        assert during_ready[0] == 503
        assert json.loads(during_ready[1])["status"] == "draining"
        assert during_detect[0] == 503
        assert finished[0] == 200, "admitted work must finish during drain"

    def test_drain_finishes_inflight_requests(self, payloads):
        @serve()
        async def outcome(server, conn):
            inflight = asyncio.ensure_future(
                conn.request("POST", "/v1/detect", *payloads[0])
            )
            await asyncio.sleep(0.005)  # request is queued or inferring
            await server.drain()
            return await inflight

        status, body = outcome
        assert status == 200
        assert json.loads(body)["raw_count"] >= 0

    def test_double_drain_is_idempotent(self):
        @serve()
        async def outcome(server, conn):
            await asyncio.gather(server.drain(), server.drain())
            return True

        assert outcome


class TestLoadgen:
    def test_closed_loop_against_live_server(self, payloads):
        @serve()
        async def outcome(server, conn):
            return await run_loadtest(
                "127.0.0.1",
                server.port,
                requests=12,
                concurrency=3,
                payloads=payloads,
            )

        assert outcome.ok == 12
        assert outcome.errors == 0
        summary = outcome.latency_summary()
        assert summary["count"] == 12
        assert 0 < summary["p50_s"] <= summary["p95_s"] <= summary["max_s"]
        assert outcome.rps > 0
        assert outcome.mode == "closed"

    def test_open_loop_against_live_server(self, payloads):
        @serve()
        async def outcome(server, conn):
            return await run_loadtest(
                "127.0.0.1",
                server.port,
                requests=8,
                concurrency=4,
                rate_rps=200.0,
                payloads=payloads,
            )

        assert outcome.mode == "open"
        assert outcome.ok + outcome.shed + outcome.errors == 8
        assert outcome.errors == 0
