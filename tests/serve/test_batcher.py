"""Micro-batcher unit tests: formation policy, deadlines, lifecycle.

The batcher is tested against a stub ``infer`` function (no engine, no
sockets) so batch *formation* behaviour — burst coalescing, max-batch
splitting, max-delay flushing, fail-fast expiry — is observable
directly from the batch sizes the stub records.
"""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError, DeadlineExpiredError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.serve.admission import AdmissionTicket
from repro.serve.batcher import MicroBatcher, RequestTelemetry


def ticket(budget_s: float = 5.0, trace: str | None = None) -> AdmissionTicket:
    now = time.perf_counter()
    return AdmissionTicket(
        enqueued_pc=now,
        deadline_pc=now + budget_s,
        budget_s=budget_s,
        retry_after_s=0.05,
        trace=trace,
    )


def run_batch(coro):
    return asyncio.run(coro)


class _Recorder:
    """Stub infer: records batch sizes and traces, echoes inputs."""

    def __init__(self, delay_s: float = 0.0):
        self.batches: list[int] = []
        self.traces: list[list] = []
        self.delay_s = delay_s

    def __call__(self, items: list, traces: list | None = None) -> list:
        self.batches.append(len(items))
        self.traces.append(list(traces or []))
        if self.delay_s:
            time.sleep(self.delay_s)
        return [f"r:{item}" for item in items]


class TestFormation:
    def test_burst_coalesces_into_one_batch(self):
        async def drive():
            infer = _Recorder()
            with ThreadPoolExecutor(1) as pool:
                batcher = MicroBatcher(
                    infer, max_batch=8, max_delay_s=0.05, executor=pool
                )
                batcher.start()
                results = await asyncio.gather(
                    *(batcher.submit(i, ticket()) for i in range(6))
                )
                await batcher.aclose()
            return infer.batches, results

        batches, results = run_batch(drive())
        assert results == [f"r:{i}" for i in range(6)]
        # a 6-request burst must not become 6 single-frame dispatches
        assert batches[0] >= 2
        assert sum(batches) == 6

    def test_max_batch_splits_oversized_bursts(self):
        async def drive():
            infer = _Recorder()
            with ThreadPoolExecutor(1) as pool:
                batcher = MicroBatcher(
                    infer, max_batch=4, max_delay_s=0.05, executor=pool
                )
                batcher.start()
                await asyncio.gather(
                    *(batcher.submit(i, ticket()) for i in range(10))
                )
                await batcher.aclose()
            return infer.batches

        batches = run_batch(drive())
        assert max(batches) <= 4
        assert sum(batches) == 10

    def test_lone_request_flushes_after_max_delay(self):
        async def drive():
            infer = _Recorder()
            with ThreadPoolExecutor(1) as pool:
                batcher = MicroBatcher(
                    infer, max_batch=8, max_delay_s=0.02, executor=pool
                )
                batcher.start()
                start = time.perf_counter()
                result = await batcher.submit("solo", ticket())
                waited = time.perf_counter() - start
                await batcher.aclose()
            return result, waited, infer.batches

        result, waited, batches = run_batch(drive())
        assert result == "r:solo"
        assert batches == [1]
        # it waited for company (the window) but not forever
        assert waited < 5.0

    def test_queue_accumulates_during_inference(self):
        """Double-buffering: requests arriving mid-infer form the next batch."""

        async def drive():
            infer = _Recorder(delay_s=0.05)
            with ThreadPoolExecutor(1) as pool:
                batcher = MicroBatcher(
                    infer, max_batch=8, max_delay_s=0.005, executor=pool
                )
                batcher.start()
                first = asyncio.ensure_future(batcher.submit("a", ticket()))
                await asyncio.sleep(0.02)  # first batch is now inferring
                rest = [
                    asyncio.ensure_future(batcher.submit(i, ticket()))
                    for i in range(4)
                ]
                await asyncio.gather(first, *rest)
                await batcher.aclose()
            return infer.batches

        batches = run_batch(drive())
        assert batches[0] == 1
        assert batches[1] == 4  # coalesced while batch 0 was on the executor


class TestDeadlines:
    def test_expired_requests_fail_fast_without_inference(self):
        async def drive():
            infer = _Recorder(delay_s=0.08)
            with ThreadPoolExecutor(1) as pool:
                batcher = MicroBatcher(
                    infer, max_batch=1, max_delay_s=0.0, executor=pool
                )
                batcher.start()
                # first request occupies the executor; the second's tiny
                # budget expires while it waits in the queue
                first = asyncio.ensure_future(batcher.submit("slow", ticket()))
                await asyncio.sleep(0.01)
                with pytest.raises(DeadlineExpiredError) as err:
                    await batcher.submit("stale", ticket(budget_s=0.01))
                await first
                await batcher.aclose()
            return infer.batches, err.value

        batches, exc = run_batch(drive())
        # the stale request was never inferred
        assert sum(batches) == 1
        assert exc.waited_s > exc.budget_s
        assert exc.reason == "deadline"


class TestLifecycle:
    def test_infer_errors_propagate_to_every_waiter(self):
        async def drive():
            def broken(items, traces):
                raise RuntimeError("engine exploded")

            with ThreadPoolExecutor(1) as pool:
                batcher = MicroBatcher(
                    broken, max_batch=4, max_delay_s=0.01, executor=pool
                )
                batcher.start()
                results = await asyncio.gather(
                    *(batcher.submit(i, ticket()) for i in range(3)),
                    return_exceptions=True,
                )
                await batcher.aclose()
            return results

        results = run_batch(drive())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_aclose_finishes_queued_work(self):
        async def drive():
            infer = _Recorder(delay_s=0.02)
            with ThreadPoolExecutor(1) as pool:
                batcher = MicroBatcher(
                    infer, max_batch=2, max_delay_s=0.001, executor=pool
                )
                batcher.start()
                pending = [
                    asyncio.ensure_future(batcher.submit(i, ticket()))
                    for i in range(5)
                ]
                await asyncio.sleep(0)  # all queued, none done
                await batcher.aclose()
                return await asyncio.gather(*pending)

        results = run_batch(drive())
        assert results == [f"r:{i}" for i in range(5)]

    def test_submit_after_close_raises(self):
        async def drive():
            with ThreadPoolExecutor(1) as pool:
                batcher = MicroBatcher(
                    _Recorder(), max_batch=2, max_delay_s=0.0, executor=pool
                )
                batcher.start()
                await batcher.aclose()
                with pytest.raises(ConfigurationError):
                    await batcher.submit("late", ticket())

        run_batch(drive())

    def test_config_validation(self):
        with ThreadPoolExecutor(1) as pool:
            with pytest.raises(ConfigurationError):
                MicroBatcher(_Recorder(), max_batch=0, executor=pool)
            with pytest.raises(ConfigurationError):
                MicroBatcher(_Recorder(), max_delay_s=-1.0, executor=pool)


class TestObservability:
    def test_spans_and_metrics_for_one_batch(self):
        async def drive():
            infer = _Recorder()
            tracer = Tracer()
            metrics = MetricsRegistry()
            with ThreadPoolExecutor(1) as pool:
                batcher = MicroBatcher(
                    infer,
                    max_batch=4,
                    max_delay_s=0.01,
                    executor=pool,
                    tracer=tracer,
                    metrics=metrics,
                )
                batcher.start()
                await asyncio.gather(
                    *(batcher.submit(i, ticket()) for i in range(3))
                )
                await batcher.aclose()
            return tracer, metrics

        tracer, metrics = run_batch(drive())
        names = [s.name for s in tracer.spans()]
        assert names.count("queue_wait") == 3
        assert "batch_form" in names
        assert "infer" in names
        infer_spans = [s for s in tracer.spans() if s.name == "infer"]
        assert all(s.cat == "serve" for s in infer_spans)

        snap = metrics.snapshot()
        assert snap["counters"]["serve.batches"] >= 1
        assert snap["histograms"]["serve.batch_size"]["count"] >= 1
        assert snap["histograms"]["serve.queue_wait_s"]["count"] == 3
        assert snap["histograms"]["serve.infer_s"]["count"] >= 1

    def test_traces_ride_through_dispatch(self):
        """Each request's trace id reaches ``infer`` and its queue_wait span."""

        async def drive():
            infer = _Recorder()
            tracer = Tracer()
            with ThreadPoolExecutor(1) as pool:
                batcher = MicroBatcher(
                    infer, max_batch=4, max_delay_s=0.01, executor=pool,
                    tracer=tracer,
                )
                batcher.start()
                await asyncio.gather(
                    *(
                        batcher.submit(i, ticket(trace=f"t{i}"))
                        for i in range(3)
                    )
                )
                await batcher.aclose()
            return infer, tracer

        infer, tracer = run_batch(drive())
        assert sorted(t for batch in infer.traces for t in batch) == [
            "t0", "t1", "t2"
        ]
        waits = [s for s in tracer.spans() if s.name == "queue_wait"]
        assert sorted(s.args["trace"] for s in waits) == ["t0", "t1", "t2"]

    def test_telemetry_is_filled_during_dispatch(self):
        async def drive():
            infer = _Recorder()
            with ThreadPoolExecutor(1) as pool:
                batcher = MicroBatcher(
                    infer, max_batch=4, max_delay_s=0.01, executor=pool
                )
                batcher.start()
                telemetry = [RequestTelemetry(trace=f"t{i}") for i in range(2)]
                await asyncio.gather(
                    *(
                        batcher.submit(i, ticket(), telemetry[i])
                        for i in range(2)
                    )
                )
                await batcher.aclose()
            return infer, telemetry

        infer, telemetry = run_batch(drive())
        # telemetry.trace wins over the (untraced) ticket
        assert sorted(t for batch in infer.traces for t in batch) == ["t0", "t1"]
        for t in telemetry:
            assert t.queue_wait_s is not None and t.queue_wait_s >= 0.0
            assert t.batch_form_s is not None and t.batch_form_s >= 0.0
            assert t.infer_s is not None and t.infer_s >= 0.0
            assert t.batch_size in (1, 2)
            timing = t.timing()
            assert set(timing) == {
                "queue_wait_s", "batch_form_s", "infer_s",
                "serialize_s", "batch_size",
            }
            assert timing["serialize_s"] is None  # the server's leg
