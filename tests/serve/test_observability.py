"""End-to-end observability: one trace id through every telemetry surface.

The acceptance path: a request into a process-sharded server answers
with an ``x-repro-trace-id`` header whose id also appears (1) in the
response body, (2) on a worker-side span in the merged Chrome trace,
(3) on the request's structured-log line, and (4) in the flight-recorder
dump — plus the Prometheus/JSON ``/metrics`` agreement and exactly-once
log accounting the rest of the issue asks for.
"""

import asyncio
import io
import json

from repro.serve.admission import AdmissionConfig
from repro.serve.loadgen import _Connection, build_payloads, run_loadtest
from repro.serve.server import DetectionServer, ServerConfig, TRACE_ID_HEADER

from tests.obs.test_prom import parse_exposition

REF = (
    json.dumps({"source": "synthetic", "width": 96, "height": 96}).encode(),
    "application/json",
)


def serve(config: ServerConfig, fn):
    """Run ``fn(server, conn, log_stream)`` against a live server."""

    async def drive():
        stream = io.StringIO()
        server = DetectionServer(config, log_stream=stream)
        await server.start()
        conn = _Connection("127.0.0.1", server.port)
        try:
            return await fn(server, conn, stream)
        finally:
            conn.close()
            await server.drain()

    return asyncio.run(drive())


def log_records(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestTraceEndToEnd:
    def test_one_id_on_every_surface_with_process_sharding(self):
        """The acceptance criterion, verbatim."""
        config = ServerConfig(
            port=0, cascade="quick", workers=2, sharding="processes",
            max_batch=4, log_format="json", trace=True,
        )

        async def scenario(server, conn, stream):
            status, body = await conn.request("POST", "/v1/detect", *REF)
            header = conn.last_headers.get(TRACE_ID_HEADER)
            _, flight_body = await conn.request("GET", "/debug/flight")
            return status, body, header, json.loads(flight_body), server, stream

        status, body, header, flight, server, stream = serve(config, scenario)
        assert status == 200
        payload = json.loads(body)
        trace_id = payload["trace_id"]

        # (0) header and body agree
        assert header == trace_id
        assert len(trace_id) == 32

        # the timing breakdown is present and plausible
        timing = payload["timing"]
        assert set(timing) == {
            "queue_wait_s", "batch_form_s", "infer_s", "serialize_s",
            "batch_size",
        }
        assert timing["batch_size"] >= 1
        for leg in ("queue_wait_s", "batch_form_s", "infer_s", "serialize_s"):
            assert timing[leg] >= 0.0

        # (1) a worker-side span in the merged Chrome trace carries the id
        traced = [
            s for s in server.tracer.spans()
            if s.args.get("trace") == trace_id
        ]
        assert traced, "no span carries the request's trace id"
        worker_frame_spans = [
            s for s in traced if s.name == "frame" and "pid" in s.args
        ]
        assert worker_frame_spans, (
            "the engine-worker frame span must carry the trace id across "
            "the process boundary"
        )

        # (2) the request's JSON log line carries the id and the worker
        requests = [r for r in log_records(stream) if r["event"] == "request"]
        (line,) = requests
        assert line["trace_id"] == trace_id
        assert line["status"] == 200
        assert line["worker"].startswith("pid ")

        # (3) the flight recorder holds the same request event
        flight_requests = [
            e for e in flight["events"] if e["kind"] == "request"
        ]
        assert any(e["trace_id"] == trace_id for e in flight_requests)

    def test_client_traceparent_is_adopted(self):
        config = ServerConfig(port=0, cascade="quick", workers=0, max_batch=1)
        incoming = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"

        async def scenario(server, conn, stream):
            return await conn.request(
                "POST", "/v1/detect", *REF, headers={"traceparent": incoming}
            )

        status, body = serve(config, scenario)
        assert status == 200
        assert json.loads(body)["trace_id"] == "ab" * 16

    def test_error_responses_carry_the_trace_header_too(self):
        config = ServerConfig(port=0, cascade="quick", workers=0, max_batch=1)

        async def scenario(server, conn, stream):
            status, body = await conn.request(
                "POST", "/v1/detect", b"{not json", "application/json"
            )
            return status, body, conn.last_headers.get(TRACE_ID_HEADER)

        status, body, header = serve(config, scenario)
        assert status == 400
        assert json.loads(body)["trace_id"] == header
        assert len(header) == 32


class TestMetricsNegotiation:
    config = ServerConfig(port=0, cascade="quick", workers=0, max_batch=2)

    def test_query_param_and_accept_header_select_prom(self):
        async def scenario(server, conn, stream):
            out = {}
            await conn.request("POST", "/v1/detect", *REF)
            out["default"] = await conn.request("GET", "/metrics")
            out["default_ct"] = conn.last_headers.get("content-type")
            out["query"] = await conn.request("GET", "/metrics?format=prom")
            out["query_ct"] = conn.last_headers.get("content-type")
            out["accept"] = await conn.request(
                "GET", "/metrics", headers={"Accept": "text/plain"}
            )
            out["json_forced"] = await conn.request(
                "GET", "/metrics?format=json", headers={"Accept": "text/plain"}
            )
            out["bad"] = await conn.request("GET", "/metrics?format=xml")
            return out

        out = serve(self.config, scenario)
        assert out["default"][0] == 200
        assert out["default_ct"] == "application/json"
        json.loads(out["default"][1])  # JSON view parses

        assert out["query"][0] == 200
        assert out["query_ct"].startswith("text/plain; version=0.0.4")
        parse_exposition(out["query"][1].decode())  # 0.0.4 view parses

        assert out["accept"][0] == 200
        parse_exposition(out["accept"][1].decode())

        assert out["json_forced"][0] == 200
        json.loads(out["json_forced"][1])

        assert out["bad"][0] == 400

    def test_prom_and_json_agree_on_every_counter(self):
        """The acceptance criterion: same scrape, same counter values."""

        async def scenario(server, conn, stream):
            for _ in range(3):
                await conn.request("POST", "/v1/detect", *REF)
            _, json_view = await conn.request("GET", "/metrics")
            _, prom_view = await conn.request("GET", "/metrics?format=prom")
            return json.loads(json_view), prom_view.decode()

        json_view, prom_view = serve(self.config, scenario)
        from repro.obs.prom import sanitize_metric_name

        samples = parse_exposition(prom_view)
        assert json_view["counters"], "scrape saw no counters"
        for name, value in json_view["counters"].items():
            prom_name = sanitize_metric_name(name)
            assert samples[prom_name] == value, name
        # requests were actually counted
        assert json_view["counters"]["serve.requests"] >= 3


class TestConcurrentScrapes:
    def test_scrapes_race_writers_without_torn_values(self):
        """JSON and Prometheus scrapes hammering a server under load:
        counters monotone, instrument sets identical, no torn values."""
        config = ServerConfig(port=0, cascade="quick", workers=0, max_batch=2)

        async def scenario(server, conn, stream):
            payloads = build_payloads(width=96, height=96, frames=2)
            stop = asyncio.Event()

            async def writer():
                c = _Connection("127.0.0.1", server.port)
                try:
                    while not stop.is_set():
                        await c.request("POST", "/v1/detect", *payloads[0])
                finally:
                    c.close()

            async def scraper() -> list[tuple[dict, dict[str, float]]]:
                # one connection: within a scraper the server processes
                # the scrapes in order, so its counters must be monotone
                scraped = []
                c = _Connection("127.0.0.1", server.port)
                try:
                    for _ in range(25):
                        _, json_view = await c.request("GET", "/metrics")
                        _, prom_view = await c.request(
                            "GET", "/metrics?format=prom"
                        )
                        scraped.append(
                            (
                                json.loads(json_view),
                                parse_exposition(prom_view.decode()),
                            )
                        )
                finally:
                    c.close()
                return scraped

            writers = [asyncio.ensure_future(writer()) for _ in range(3)]
            per_scraper = await asyncio.gather(scraper(), scraper())
            stop.set()
            await asyncio.gather(*writers)
            return per_scraper

        per_scraper = serve(config, scenario)
        from repro.obs.prom import sanitize_metric_name

        assert all(len(scraped) == 25 for scraped in per_scraper)
        for scraped in per_scraper:
            last_requests = 0.0
            for json_view, prom_samples in scraped:
                counters = json_view["counters"]
                requests = counters.get("serve.requests", 0.0)
                assert requests >= last_requests, "counter went backwards"
                last_requests = requests
                # every JSON instrument appears in the Prometheus view
                # scraped immediately after it (registration is monotone)
                for name in counters:
                    assert sanitize_metric_name(name) in prom_samples
                for name in json_view["gauges"]:
                    assert sanitize_metric_name(name) in prom_samples
                # no torn histogram: a sampled summary must be ordered
                for name, summary in json_view["histograms"].items():
                    prom = sanitize_metric_name(name)
                    assert prom_samples[prom + "_count"] >= 0
                    if summary["count"]:
                        assert summary["min"] <= summary["p50"] <= summary["p95"]
                        assert summary["p95"] <= summary["max"]
                        assert (
                            summary["count"] * summary["min"]
                            <= summary["sum"] + 1e-9
                        )
            assert last_requests > 0, "scraper never saw a counted request"

    def test_monotone_counters_across_sequential_scrapes(self):
        config = ServerConfig(port=0, cascade="quick", workers=0, max_batch=2)

        async def scenario(server, conn, stream):
            views = []
            for _ in range(4):
                await conn.request("POST", "/v1/detect", *REF)
                _, body = await conn.request("GET", "/metrics")
                views.append(json.loads(body)["counters"]["serve.requests"])
            return views

        views = serve(config, scenario)
        assert views == sorted(views)
        assert views[-1] == 4.0


class TestExactlyOnceAccounting:
    def test_every_request_logged_once_including_sheds(self):
        """requests logged == requests answered, 429s and errors included."""
        config = ServerConfig(
            port=0, cascade="quick", workers=0, max_batch=1,
            log_format="json",
            admission=AdmissionConfig(max_queue=1, max_concurrency=2),
        )

        async def scenario(server, conn, stream):
            payloads = build_payloads(width=96, height=96, frames=2)

            async def fire():
                c = _Connection("127.0.0.1", server.port)
                try:
                    return await c.request("POST", "/v1/detect", *payloads[0])
                finally:
                    c.close()

            results = await asyncio.gather(*(fire() for _ in range(12)))
            bad = await conn.request(
                "POST", "/v1/detect", b"{not json", "application/json"
            )
            return results, bad, stream

        results, bad, stream = serve(config, scenario)
        statuses = [status for status, _ in results] + [bad[0]]
        records = [r for r in log_records(stream) if r["event"] == "request"]
        assert len(records) == len(statuses) == 13
        assert sorted(r["status"] for r in records) == sorted(statuses)
        shed = [r for r in records if r["status"] == 429]
        assert all(r["shed_reason"] in ("queue", "concurrency", "deadline")
                   for r in shed)
        assert all(len(r["trace_id"]) == 32 for r in records)
        # ids are unique per request
        assert len({r["trace_id"] for r in records}) == 13


class TestFlightEndpointAndStats:
    def test_debug_flight_and_stats_observability_block(self):
        config = ServerConfig(
            port=0, cascade="quick", workers=0, max_batch=1,
            log_format="json", flight_capacity=8,
        )

        async def scenario(server, conn, stream):
            for _ in range(3):
                await conn.request("POST", "/v1/detect", *REF)
            _, flight = await conn.request("GET", "/debug/flight")
            _, stats = await conn.request("GET", "/stats")
            return json.loads(flight), json.loads(stats)

        flight, stats = serve(config, scenario)
        kinds = [e["kind"] for e in flight["events"]]
        assert kinds.count("request") == 3
        assert "lifecycle" in kinds
        assert flight["capacity"] == 8

        obs = stats["serve"]["observability"]
        assert obs["flight"]["capacity"] == 8
        assert obs["flight"]["recorded"] == flight["recorded"]
        assert obs["log"]["format"] == "json"
        assert obs["log"]["emitted"] >= 5  # 3 requests + lifecycle events
        assert obs["log"]["suppressed"] == 0

    def test_dump_flight_writes_configured_path(self, tmp_path):
        path = tmp_path / "FLIGHT_test.json"
        config = ServerConfig(
            port=0, cascade="quick", workers=0, max_batch=1,
            flight_path=str(path),
        )

        async def scenario(server, conn, stream):
            await conn.request("POST", "/v1/detect", *REF)
            return server.dump_flight(reason="test")

        dumped = serve(config, scenario)
        assert dumped == str(path)
        on_disk = json.loads(path.read_text())
        assert on_disk["reason"] == "test"
        assert any(e["kind"] == "request" for e in on_disk["events"])


class TestLoadgenTraceCapture:
    def test_loadtest_reports_slowest_with_trace_ids(self):
        config = ServerConfig(port=0, cascade="quick", workers=0, max_batch=4)

        async def scenario(server, conn, stream):
            return await run_loadtest(
                "127.0.0.1", server.port, requests=8, concurrency=2,
                payloads=build_payloads(width=96, height=96, frames=2),
            )

        result = serve(config, scenario)
        assert result.ok == 8
        assert len(result.trace_ids) == 8
        assert all(t and len(t) == 32 for t in result.trace_ids)
        slowest = result.slowest(3)
        assert len(slowest) == 3
        lats = [entry["latency_s"] for entry in slowest]
        assert lats == sorted(lats, reverse=True)
        assert lats[0] == max(result.latencies_s)
        assert all(entry["trace_id"] in result.trace_ids for entry in slowest)
        assert result.to_dict()["slowest"] == result.slowest()
