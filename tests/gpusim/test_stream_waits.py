"""Tests for cross-stream wait dependencies (cudaStreamWaitEvent model)."""

import pytest

from repro.errors import LaunchError
from repro.gpusim.device import GTX470
from repro.gpusim.kernel import BlockWork, KernelLaunch, LaunchConfig
from repro.gpusim.scheduler import DeviceScheduler, ExecutionMode


def launch(name, blocks, stream, waits=()):
    return KernelLaunch(
        name=name,
        config=LaunchConfig(grid_blocks=blocks, threads_per_block=128, regs_per_thread=16),
        work=BlockWork.from_uniform(blocks, warp_instructions=3000, dram_bytes_read=2048),
        stream=stream,
        wait_streams=tuple(waits),
    )


@pytest.fixture
def sched():
    return DeviceScheduler(GTX470)


class TestWaitStreams:
    def test_waiter_starts_after_watched_streams(self, sched):
        launches = [
            launch("a", 200, stream=1),
            launch("b", 150, stream=2),
            launch("display", 20, stream=3, waits=(1, 2)),
        ]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        by_name = {t.name: t for t in result.timeline.traces}
        assert by_name["display"].start_s >= by_name["a"].end_s
        assert by_name["display"].start_s >= by_name["b"].end_s

    def test_without_waits_display_overlaps(self, sched):
        launches = [
            launch("a", 600, stream=1),
            launch("display", 20, stream=3),
        ]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        by_name = {t.name: t for t in result.timeline.traces}
        assert by_name["display"].start_s < by_name["a"].end_s

    def test_unwatched_stream_not_blocked(self, sched):
        launches = [
            launch("slow", 2000, stream=1),
            launch("other", 30, stream=2),
            launch("dep", 30, stream=3, waits=(2,)),
        ]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        by_name = {t.name: t for t in result.timeline.traces}
        # dep waits only on stream 2, so it may finish before slow does
        assert by_name["dep"].start_s >= by_name["other"].end_s
        assert by_name["dep"].end_s < by_name["slow"].end_s

    def test_wait_on_empty_stream_is_noop(self, sched):
        launches = [launch("a", 40, stream=1, waits=(9,))]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        assert result.timeline.traces[0].blocks == 40

    def test_only_earlier_launches_block(self, sched):
        # the wait is an event recorded at issue time: launches issued into
        # the watched stream *later* do not block the waiter
        launches = [
            launch("early", 30, stream=1),
            launch("waiter", 30, stream=2, waits=(1,)),
            launch("late", 2000, stream=1),
        ]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        by_name = {t.name: t for t in result.timeline.traces}
        assert by_name["waiter"].start_s >= by_name["early"].end_s
        assert by_name["waiter"].end_s < by_name["late"].end_s

    def test_serial_mode_ignores_waits(self, sched):
        launches = [
            launch("a", 30, stream=1),
            launch("b", 30, stream=2, waits=(1,)),
        ]
        result = sched.run(launches, ExecutionMode.SERIAL)
        traces = sorted(result.timeline.traces, key=lambda t: t.start_s)
        assert traces[0].end_s <= traces[1].start_s + 1e-12

    def test_chain_of_waits(self, sched):
        launches = [
            launch("a", 50, stream=1),
            launch("b", 50, stream=2, waits=(1,)),
            launch("c", 50, stream=3, waits=(2,)),
        ]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        by_name = {t.name: t for t in result.timeline.traces}
        assert by_name["b"].start_s >= by_name["a"].end_s
        assert by_name["c"].start_s >= by_name["b"].end_s

    def test_negative_wait_stream_rejected(self):
        with pytest.raises(LaunchError):
            launch("x", 10, stream=1, waits=(-1,)).validate(GTX470)

    def test_conservation_with_waits(self, sched):
        launches = [
            launch("a", 77, stream=1),
            launch("b", 33, stream=2, waits=(1,)),
            launch("c", 11, stream=3, waits=(1, 2)),
        ]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        assert result.total.blocks == 77 + 33 + 11
