"""Tests for the multi-GPU scale-parallelism model."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.kernel import BlockWork, KernelLaunch, LaunchConfig
from repro.gpusim.multigpu import (
    MultiGpuScheduler,
    assign_levels_balanced,
    assign_levels_round_robin,
)


def group(name, blocks, stream=1):
    return [
        KernelLaunch(
            name=name,
            config=LaunchConfig(grid_blocks=blocks, threads_per_block=128, regs_per_thread=16),
            work=BlockWork.from_uniform(blocks, warp_instructions=4000, dram_bytes_read=2048),
            stream=stream,
        )
    ]


@pytest.fixture
def levels():
    # geometric sizes like a pyramid
    return [group(f"lvl{i}", b) for i, b in enumerate([800, 400, 200, 100, 50, 25, 12, 6])]


class TestAssignments:
    def test_round_robin(self):
        assert assign_levels_round_robin(5, 2) == [0, 1, 0, 1, 0]

    def test_round_robin_validates(self):
        with pytest.raises(ConfigurationError):
            assign_levels_round_robin(0, 2)

    def test_balanced_spreads_heaviest(self):
        assignment = assign_levels_balanced([100.0, 90.0, 10.0, 5.0], 2)
        assert assignment[0] != assignment[1]

    def test_balanced_single_device(self):
        assert assign_levels_balanced([1.0, 2.0], 1) == [0, 0]


class TestMultiGpuScheduler:
    def test_single_device_equals_flat_schedule(self, levels):
        result = MultiGpuScheduler(1).run(levels, frame_bytes=10_000)
        assert result.makespan_s > 0
        assert len(result.per_device) == 1

    def test_more_devices_not_slower(self, levels):
        one = MultiGpuScheduler(1).run(levels, frame_bytes=10_000).makespan_s
        sched = MultiGpuScheduler(4)
        costs = sched.estimate_level_costs(levels)
        four = sched.run(
            levels, frame_bytes=10_000, assignment=assign_levels_balanced(costs, 4)
        ).makespan_s
        assert four <= one * 1.001

    def test_speedup_sublinear(self, levels):
        one = MultiGpuScheduler(1).run(levels, frame_bytes=10_000).makespan_s
        sched = MultiGpuScheduler(4)
        costs = sched.estimate_level_costs(levels)
        four = sched.run(
            levels, frame_bytes=10_000, assignment=assign_levels_balanced(costs, 4)
        ).makespan_s
        # scale 0 holds ~half the work: 4 GPUs cannot reach 4x
        assert one / four < 3.0

    def test_transfer_cost_included(self, levels):
        small = MultiGpuScheduler(2).run(levels, frame_bytes=1).makespan_s
        large = MultiGpuScheduler(2).run(levels, frame_bytes=50_000_000).makespan_s
        assert large > small

    def test_imbalance_reported(self, levels):
        result = MultiGpuScheduler(3).run(levels, frame_bytes=1000)
        assert result.load_imbalance >= 1.0

    def test_bad_assignment_rejected(self, levels):
        sched = MultiGpuScheduler(2)
        with pytest.raises(ConfigurationError):
            sched.run(levels, frame_bytes=100, assignment=[0] * (len(levels) - 1))
        with pytest.raises(ConfigurationError):
            sched.run(levels, frame_bytes=100, assignment=[5] * len(levels))

    def test_rejects_zero_devices(self):
        with pytest.raises(ConfigurationError):
            MultiGpuScheduler(0)
