"""Tests for device specifications."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.device import (
    GTX470,
    XEON_HOST_DUAL_E5472,
    XEON_HOST_I7_2600K,
    HostSpec,
)


class TestGTX470Preset:
    def test_matches_paper_testbed_sm_count(self):
        assert GTX470.sm_count == 14

    def test_total_cuda_cores(self):
        assert GTX470.sm_count * GTX470.cores_per_sm == 448

    def test_warp_size(self):
        assert GTX470.warp_size == 32

    def test_fermi_residency_limits(self):
        assert GTX470.max_warps_per_sm == 48
        assert GTX470.max_blocks_per_sm == 8
        assert GTX470.max_threads_per_sm == 1536

    def test_constant_memory_is_64k(self):
        assert GTX470.constant_mem_bytes == 64 * 1024

    def test_peak_issue_rate_positive(self):
        # 14 SMs x 2 issue x 1.215 GHz = 34 G warp-instructions/s.
        assert GTX470.peak_warp_issue_per_s == pytest.approx(34.02e9)

    def test_dram_share_per_sm(self):
        share = GTX470.dram_bytes_per_cycle_per_sm()
        assert 1.0 < share < 64.0


class TestDeviceSpecValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(GTX470, sm_count=0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(GTX470, min_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(GTX470, min_efficiency=1.5)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(GTX470, dram_bandwidth_bytes=-1.0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GTX470.sm_count = 10  # type: ignore[misc]


class TestHostSpecs:
    def test_i7_is_faster_serially_than_old_xeon(self):
        # The paper: "a newer single quad-core i7 outperformed the latter
        # with a 2X performance improvement on average".
        ratio = (
            XEON_HOST_I7_2600K.relative_serial_throughput
            / XEON_HOST_DUAL_E5472.relative_serial_throughput
        )
        assert ratio == pytest.approx(2.0)

    def test_both_expose_eight_threads(self):
        assert XEON_HOST_I7_2600K.max_threads == 8
        assert XEON_HOST_DUAL_E5472.max_threads == 8

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            HostSpec("x", 4, 8, 0.3, 1.0, 0.0, 3.5)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            HostSpec("x", 0, 8, 0.3, 1.0, 0.9, 3.5)

    def test_effective_cores_i7(self):
        host = XEON_HOST_I7_2600K
        assert host.effective_cores(4) == 4.0
        assert host.effective_cores(8) == pytest.approx(4 + 0.28 * 4)

    def test_speedup_one_thread_is_one(self):
        assert XEON_HOST_I7_2600K.parallel_speedup(1) == pytest.approx(1.0)

    def test_speedup_monotone_and_capped(self):
        host = XEON_HOST_DUAL_E5472
        values = [host.parallel_speedup(t) for t in range(1, 9)]
        assert values == sorted(values)
        assert values[-1] <= host.bandwidth_cap_speedup

    def test_eight_thread_speedup_near_paper(self):
        # Paper Fig. 8: close to 3.5X on both platforms with 8 threads.
        for host in (XEON_HOST_I7_2600K, XEON_HOST_DUAL_E5472):
            assert 3.0 <= host.parallel_speedup(8) <= 4.0
