"""Tests for the memory-traffic models and constant memory arena."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryModelError
from repro.gpusim.device import GTX470
from repro.gpusim.memory import (
    ConstantMemory,
    coalesced_bytes,
    constant_broadcast_requests,
    shared_bank_conflict_factor,
    strided_transactions,
)


class TestCoalescedBytes:
    def test_perfect_coalescing_one_transaction(self):
        assert coalesced_bytes(32, 4) == 128

    def test_scattered_access_pays_per_thread(self):
        assert coalesced_bytes(32, 4, contiguous=False) == 32 * 128

    def test_zero_threads(self):
        assert coalesced_bytes(0, 4) == 0

    def test_rounds_up_to_transactions(self):
        assert coalesced_bytes(33, 4) == 256

    def test_rejects_negative(self):
        with pytest.raises(MemoryModelError):
            coalesced_bytes(-1, 4)

    @given(st.integers(0, 2048), st.integers(0, 64))
    def test_contiguous_never_exceeds_scattered(self, threads, nbytes):
        assert coalesced_bytes(threads, nbytes) <= coalesced_bytes(
            threads, nbytes, contiguous=False
        )

    @given(st.integers(1, 2048), st.integers(1, 64))
    def test_at_least_useful_bytes(self, threads, nbytes):
        assert coalesced_bytes(threads, nbytes) >= threads * nbytes


class TestStridedTransactions:
    def test_unit_stride_single_transaction(self):
        assert strided_transactions(32, 4, 1) == 1

    def test_large_stride_one_per_lane(self):
        assert strided_transactions(32, 4, 1024) == 32

    def test_monotone_in_stride(self):
        values = [strided_transactions(32, 4, s) for s in (1, 2, 4, 8, 16, 32, 64)]
        assert values == sorted(values)

    def test_rejects_zero_stride(self):
        with pytest.raises(MemoryModelError):
            strided_transactions(32, 4, 0)


class TestConstantBroadcast:
    def test_uniform_access_broadcasts(self):
        # Section III-C: constant memory broadcasts when all warp lanes read
        # the same address, which is why the cascade lives there.
        assert constant_broadcast_requests(True, 10) == 10

    def test_divergent_access_serialises(self):
        assert constant_broadcast_requests(False, 10) == 320

    def test_rejects_negative(self):
        with pytest.raises(MemoryModelError):
            constant_broadcast_requests(True, -1)


class TestBankConflicts:
    def test_unit_stride_conflict_free(self):
        assert shared_bank_conflict_factor(1) == 1

    def test_stride_32_fully_serialised(self):
        assert shared_bank_conflict_factor(32) == 32

    def test_padded_tile_stride_33_conflict_free(self):
        # The classic transpose-tile padding trick.
        assert shared_bank_conflict_factor(33) == 1

    def test_stride_2_two_way(self):
        assert shared_bank_conflict_factor(2) == 2


class TestConstantMemory:
    def test_upload_within_capacity(self):
        cm = ConstantMemory(GTX470)
        offset = cm.upload(np.zeros(1000, dtype=np.float32), "cascade")
        assert offset == 0
        assert cm.used == 4000

    def test_sequential_offsets(self):
        cm = ConstantMemory(GTX470)
        cm.upload(np.zeros(16, dtype=np.uint8), "a")
        off = cm.upload(np.zeros(16, dtype=np.uint8), "b")
        assert off == 16

    def test_overflow_raises(self):
        cm = ConstantMemory(GTX470)
        with pytest.raises(MemoryModelError):
            cm.upload(np.zeros(64 * 1024 + 1, dtype=np.uint8))

    def test_exact_fit_allowed(self):
        cm = ConstantMemory(GTX470)
        cm.upload(np.zeros(64 * 1024, dtype=np.uint8))
        assert cm.free == 0

    def test_reset_frees_everything(self):
        cm = ConstantMemory(GTX470)
        cm.upload(np.zeros(128, dtype=np.uint8), "x")
        cm.reset()
        assert cm.used == 0
        assert cm.segments() == []

    def test_segments_report(self):
        cm = ConstantMemory(GTX470)
        cm.upload(np.zeros(8, dtype=np.uint8), "hdr")
        assert cm.segments() == [("hdr", 0, 8)]
