"""Tests for timelines, counters and the profiler report."""

import pytest

from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import GTX470
from repro.gpusim.kernel import BlockWork, KernelLaunch, LaunchConfig
from repro.gpusim.profiler import CommandLineProfiler
from repro.gpusim.scheduler import DeviceScheduler, ExecutionMode
from repro.gpusim.trace import KernelTrace, Timeline


def trace(name, stream, start, end):
    return KernelTrace(
        name=name, stream=stream, issue_s=start, start_s=start, end_s=end,
        blocks=1, counters=PerfCounters(),
    )


class TestPerfCounters:
    def test_branch_efficiency_all_uniform(self):
        c = PerfCounters(branches=1000, divergent_branches=0)
        assert c.branch_efficiency == 1.0

    def test_branch_efficiency_paper_value(self):
        c = PerfCounters(branches=1000, divergent_branches=11)
        assert c.branch_efficiency == pytest.approx(0.989)

    def test_branch_efficiency_no_branches(self):
        assert PerfCounters().branch_efficiency == 1.0

    def test_add_accumulates(self):
        a = PerfCounters(branches=10, dram_bytes_read=100, blocks=2)
        a.add(PerfCounters(branches=5, dram_bytes_read=50, blocks=1))
        assert a.branches == 15
        assert a.dram_bytes_read == 150
        assert a.blocks == 3

    def test_copy_is_independent(self):
        a = PerfCounters(branches=1)
        b = a.copy()
        b.branches = 99
        assert a.branches == 1

    def test_throughput(self):
        c = PerfCounters(dram_bytes_read=1e6)
        assert c.dram_read_throughput(1.0) == pytest.approx(1e6)
        assert c.dram_read_throughput(0.0) == 0.0


class TestTimeline:
    def test_makespan(self):
        tl = Timeline([trace("a", 0, 0.0, 1.0), trace("b", 1, 0.5, 2.0)])
        assert tl.makespan_s == 2.0

    def test_busy_exceeds_makespan_when_overlapping(self):
        tl = Timeline([trace("a", 0, 0.0, 1.0), trace("b", 1, 0.0, 1.0)])
        assert tl.busy_s == pytest.approx(2.0)
        assert tl.makespan_s == pytest.approx(1.0)

    def test_overlap_pairs(self):
        tl = Timeline([
            trace("a", 0, 0.0, 1.0),
            trace("b", 1, 0.5, 1.5),
            trace("c", 2, 2.0, 3.0),
        ])
        assert tl.overlap_pairs() == 1

    def test_no_overlap(self):
        tl = Timeline([trace("a", 0, 0.0, 1.0), trace("b", 1, 1.0, 2.0)])
        assert tl.overlap_pairs() == 0

    def test_by_stream_groups(self):
        tl = Timeline([trace("a", 0, 0.0, 1.0), trace("b", 1, 0.0, 1.0), trace("c", 0, 1.0, 2.0)])
        groups = tl.by_stream()
        assert [t.name for t in groups[0]] == ["a", "c"]
        assert [t.name for t in groups[1]] == ["b"]

    def test_render_gantt_has_stream_rows(self):
        tl = Timeline([trace("a", 0, 0.0, 1.0), trace("b", 3, 0.2, 0.7)])
        text = tl.render_gantt(40)
        assert "stream   0" in text
        assert "stream   3" in text

    def test_render_empty(self):
        assert "empty" in Timeline().render_gantt()

    def test_kernel_trace_overlaps(self):
        a, b = trace("a", 0, 0.0, 1.0), trace("b", 1, 0.9, 1.1)
        assert a.overlaps(b) and b.overlaps(a)
        c = trace("c", 2, 1.0, 2.0)
        assert not a.overlaps(c)


class TestProfiler:
    @pytest.fixture
    def result(self):
        sched = DeviceScheduler(GTX470)
        launches = []
        for i, b in enumerate([300, 20, 5]):
            cfg = LaunchConfig(grid_blocks=b, threads_per_block=128, regs_per_thread=16)
            work = BlockWork.from_uniform(
                b, warp_instructions=2000, dram_bytes_read=4096,
                branches=50, divergent_branches=1,
            )
            launches.append(KernelLaunch(name=f"cascade_s{i}", config=cfg, work=work, stream=i + 1))
        return sched.run(launches, ExecutionMode.CONCURRENT)

    def test_conckerneltrace_lists_all_kernels(self, result):
        report = CommandLineProfiler(result).concurrent_kernel_trace()
        for i in range(3):
            assert f"cascade_s{i}" in report

    def test_counter_report_has_totals(self, result):
        report = CommandLineProfiler(result).counter_report()
        assert "TOTAL" in report
        assert "branch eff" in report

    def test_summary_mentions_mode(self, result):
        assert "concurrent" in CommandLineProfiler(result).summary()

    def test_rows_sorted_by_start(self, result):
        rows = CommandLineProfiler(result).kernel_rows()
        starts = [r.start_s for r in rows]
        assert starts == sorted(starts)
