"""Tests for the device scheduler: stream ordering, overlap, conservation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.device import GTX470
from repro.gpusim.kernel import BlockWork, KernelLaunch, LaunchConfig
from repro.gpusim.scheduler import DeviceScheduler, ExecutionMode


def make_launch(name, nblocks, stream=0, threads=256, instr=4000.0, dram=8192.0,
                smem=4096, heterogeneous=False, seed=0):
    cfg = LaunchConfig(
        grid_blocks=nblocks, threads_per_block=threads,
        regs_per_thread=16, shared_mem_per_block=smem,
    )
    if heterogeneous:
        rng = np.random.default_rng(seed)
        work = BlockWork.from_uniform(nblocks, warp_instructions=instr, dram_bytes_read=dram)
        work.warp_instructions = work.warp_instructions * rng.uniform(0.2, 5.0, nblocks)
    else:
        work = BlockWork.from_uniform(
            nblocks, warp_instructions=instr, dram_bytes_read=dram,
            branches=100, divergent_branches=1,
        )
    return KernelLaunch(name=name, config=cfg, work=work, stream=stream)


@pytest.fixture
def sched():
    return DeviceScheduler(GTX470)


class TestBasicScheduling:
    def test_empty_batch(self, sched):
        result = sched.run([], ExecutionMode.SERIAL)
        assert result.makespan_s == 0.0
        assert result.timeline.traces == []

    def test_single_kernel_runs(self, sched):
        result = sched.run([make_launch("k", 100)], ExecutionMode.SERIAL)
        assert result.makespan_s > 0
        assert len(result.timeline.traces) == 1
        assert result.timeline.traces[0].blocks == 100

    def test_all_launches_traced(self, sched):
        launches = [make_launch(f"k{i}", 20 + i, stream=i) for i in range(5)]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        assert sorted(t.name for t in result.timeline.traces) == sorted(
            f"k{i}" for i in range(5)
        )

    def test_trace_interval_valid(self, sched):
        result = sched.run([make_launch("k", 500)], ExecutionMode.SERIAL)
        t = result.timeline.traces[0]
        assert t.issue_s <= t.start_s < t.end_s

    def test_more_blocks_takes_longer(self, sched):
        small = sched.run([make_launch("k", 140)], ExecutionMode.SERIAL).makespan_s
        large = sched.run([make_launch("k", 1400)], ExecutionMode.SERIAL).makespan_s
        assert large > small * 5

    def test_counters_aggregate(self, sched):
        result = sched.run([make_launch("k", 100)], ExecutionMode.SERIAL)
        assert result.total.blocks == 100
        assert result.total.branches == pytest.approx(100 * 100)


class TestStreamSemantics:
    def test_same_stream_never_overlaps(self, sched):
        launches = [make_launch(f"k{i}", 30, stream=3) for i in range(4)]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        traces = sorted(result.timeline.traces, key=lambda t: t.start_s)
        for a, b in zip(traces, traces[1:]):
            assert a.end_s <= b.start_s + 1e-12

    def test_serial_mode_forces_stream_zero(self, sched):
        launches = [make_launch(f"k{i}", 30, stream=i) for i in range(4)]
        result = sched.run(launches, ExecutionMode.SERIAL)
        assert all(t.stream == 0 for t in result.timeline.traces)
        traces = sorted(result.timeline.traces, key=lambda t: t.start_s)
        for a, b in zip(traces, traces[1:]):
            assert a.end_s <= b.start_s + 1e-12

    def test_different_streams_overlap(self, sched):
        launches = [make_launch(f"k{i}", 400, stream=i + 1) for i in range(4)]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        assert result.timeline.overlap_pairs() > 0

    def test_issue_order_preserved_within_stream(self, sched):
        launches = [make_launch(f"k{i}", 10, stream=1) for i in range(6)]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        by_name = {t.name: t for t in result.timeline.traces}
        starts = [by_name[f"k{i}"].start_s for i in range(6)]
        assert starts == sorted(starts)


class TestConcurrencyBenefit:
    def test_concurrent_not_slower_than_serial(self, sched):
        def mk():
            return [make_launch(f"k{i}", b, stream=i + 1)
                    for i, b in enumerate([800, 90, 40, 14, 6, 2])]
        serial = sched.run(mk(), ExecutionMode.SERIAL).makespan_s
        conc = sched.run(mk(), ExecutionMode.CONCURRENT).makespan_s
        assert conc <= serial * 1.001

    def test_small_kernel_mix_speedup_significant(self, sched):
        # The paper's mechanism: many under-occupied kernels overlap.  The
        # full-pipeline calibration (Table II, ~2x) is asserted at the
        # experiment level; here we only require a clear win on a bare mix.
        def mk():
            return [make_launch(f"k{i}", b, stream=i + 1)
                    for i, b in enumerate([2000, 300, 200, 120, 60, 30, 14, 8, 4, 2, 1, 1])]
        serial = sched.run(mk(), ExecutionMode.SERIAL).makespan_s
        conc = sched.run(mk(), ExecutionMode.CONCURRENT).makespan_s
        assert serial / conc > 1.15

    def test_concurrent_utilization_higher(self, sched):
        def mk():
            return [make_launch(f"k{i}", b, stream=i + 1)
                    for i, b in enumerate([1000, 100, 40, 10, 4, 1])]
        serial = sched.run(mk(), ExecutionMode.SERIAL)
        conc = sched.run(mk(), ExecutionMode.CONCURRENT)
        assert conc.utilization > serial.utilization

    def test_single_big_kernel_modes_equal(self, sched):
        serial = sched.run([make_launch("k", 5000)], ExecutionMode.SERIAL).makespan_s
        conc = sched.run([make_launch("k", 5000, stream=1)], ExecutionMode.CONCURRENT).makespan_s
        assert conc == pytest.approx(serial, rel=1e-9)


class TestConservation:
    @given(
        blocks=st.lists(st.integers(1, 300), min_size=1, max_size=6),
        mode=st.sampled_from([ExecutionMode.SERIAL, ExecutionMode.CONCURRENT]),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_block_executes_exactly_once(self, blocks, mode):
        sched = DeviceScheduler(GTX470)
        launches = [make_launch(f"k{i}", b, stream=i) for i, b in enumerate(blocks)]
        result = sched.run(launches, mode)
        assert result.total.blocks == sum(blocks)
        for launch, trace in zip(launches, sorted(result.timeline.traces, key=lambda t: t.name)):
            assert trace.blocks == launch.config.grid_blocks

    @given(blocks=st.lists(st.integers(1, 200), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_makespan_at_least_critical_path(self, blocks):
        sched = DeviceScheduler(GTX470)
        launches = [make_launch(f"k{i}", b, stream=i, heterogeneous=True, seed=i)
                    for i, b in enumerate(blocks)]
        result = sched.run(launches, ExecutionMode.CONCURRENT)
        # Makespan cannot beat perfect-speedup over all SMs at peak
        # efficiency.  The processor-sharing approximation recomputes shares
        # only at dispatch time, so late joiners can transiently over-credit
        # SM bandwidth; allow a bounded 15 % slack for that known error.
        cm = sched.cost_model
        total_work = sum(
            float(cm.block_base_seconds(l.config, l.work).sum()) for l in launches
        )
        assert result.makespan_s >= total_work / GTX470.sm_count * 0.85

    @given(blocks=st.lists(st.integers(1, 120), min_size=2, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_serial_at_least_concurrent(self, blocks):
        sched = DeviceScheduler(GTX470)

        def mk():
            return [make_launch(f"k{i}", b, stream=i + 1) for i, b in enumerate(blocks)]

        serial = sched.run(mk(), ExecutionMode.SERIAL).makespan_s
        conc = sched.run(mk(), ExecutionMode.CONCURRENT).makespan_s
        assert serial >= conc * 0.999

    def test_deterministic(self, sched):
        def mk():
            return [make_launch(f"k{i}", 50 + 13 * i, stream=i, heterogeneous=True, seed=i)
                    for i in range(4)]
        a = sched.run(mk(), ExecutionMode.CONCURRENT).makespan_s
        b = sched.run(mk(), ExecutionMode.CONCURRENT).makespan_s
        assert a == b


class TestHeterogeneousBlocks:
    def test_heterogeneous_grid_executes(self, sched):
        result = sched.run([make_launch("k", 777, heterogeneous=True)], ExecutionMode.SERIAL)
        assert result.total.blocks == 777

    def test_cohort_quantisation_close_to_exact_sum(self, sched):
        launch = make_launch("k", 400, heterogeneous=True, seed=3)
        cohorts = sched.cost_model.build_cohorts(launch)
        assert sum(c.count for c in cohorts) == 400
        exact = float(sched.cost_model.block_base_seconds(launch.config, launch.work).sum())
        approx = sum(c.count * c.base_seconds for c in cohorts)
        assert approx == pytest.approx(exact, rel=0.08)
