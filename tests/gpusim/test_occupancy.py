"""Tests for the occupancy calculator."""

import pytest

from repro.errors import LaunchError
from repro.gpusim.device import GTX470
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.occupancy import OccupancyCalculator


@pytest.fixture
def calc():
    return OccupancyCalculator(GTX470)


class TestResidencyLimits:
    def test_small_blocks_limited_by_block_slots(self, calc):
        res = calc.residency(LaunchConfig(grid_blocks=10, threads_per_block=32, regs_per_thread=8))
        assert res.blocks_per_sm == 8
        assert res.limiting_factor == "blocks"

    def test_warp_limited(self, calc):
        # 256 threads = 8 warps; 48 // 8 = 6 blocks.
        res = calc.residency(
            LaunchConfig(grid_blocks=10, threads_per_block=256, regs_per_thread=8)
        )
        assert res.blocks_per_sm == 6
        assert res.limiting_factor == "warps"

    def test_shared_memory_limited(self, calc):
        cfg = LaunchConfig(
            grid_blocks=10, threads_per_block=64, regs_per_thread=8,
            shared_mem_per_block=20 * 1024,
        )
        res = calc.residency(cfg)
        assert res.blocks_per_sm == 2
        assert res.limiting_factor == "shared_memory"

    def test_register_limited(self, calc):
        cfg = LaunchConfig(grid_blocks=10, threads_per_block=512, regs_per_thread=60)
        res = calc.residency(cfg)
        assert res.limiting_factor == "registers"
        assert res.blocks_per_sm == 1

    def test_unlaunchable_raises(self, calc):
        cfg = LaunchConfig(grid_blocks=1, threads_per_block=1024, regs_per_thread=60)
        with pytest.raises(LaunchError):
            calc.residency(cfg)

    def test_warps_per_sm_consistent(self, calc):
        cfg = LaunchConfig(grid_blocks=10, threads_per_block=192, regs_per_thread=8)
        res = calc.residency(cfg)
        assert res.warps_per_sm == res.blocks_per_sm * cfg.warps_per_block

    def test_occupancy_fraction(self, calc):
        cfg = LaunchConfig(grid_blocks=10, threads_per_block=256, regs_per_thread=8)
        res = calc.residency(cfg)
        assert res.occupancy_of(GTX470) == pytest.approx(48 / 48)


class TestDeviceOccupancy:
    def test_large_grid_saturates(self, calc):
        cfg = LaunchConfig(grid_blocks=100_000, threads_per_block=256, regs_per_thread=8)
        assert calc.device_occupancy(cfg, 100_000) == pytest.approx(1.0)

    def test_tiny_grid_underutilises(self, calc):
        # The Fig. 2 variable-window argument: one block cannot cover 14 SMs.
        cfg = LaunchConfig(grid_blocks=1, threads_per_block=256, regs_per_thread=8)
        occ = calc.device_occupancy(cfg, 1)
        assert occ < 0.02

    def test_monotone_in_grid_size(self, calc):
        cfg = LaunchConfig(grid_blocks=1, threads_per_block=128, regs_per_thread=8)
        values = [calc.device_occupancy(cfg, g) for g in (1, 4, 14, 56, 1000)]
        assert values == sorted(values)

    def test_rejects_empty_grid(self, calc):
        cfg = LaunchConfig(grid_blocks=1, threads_per_block=128)
        with pytest.raises(LaunchError):
            calc.device_occupancy(cfg, 0)


class TestLaunchConfig:
    def test_partial_warp_rounds_up(self):
        assert LaunchConfig(grid_blocks=1, threads_per_block=33).warps_per_block == 2

    def test_validate_rejects_oversized_block(self):
        with pytest.raises(LaunchError):
            LaunchConfig(grid_blocks=1, threads_per_block=2048).validate(GTX470)

    def test_validate_rejects_oversized_shared(self):
        cfg = LaunchConfig(grid_blocks=1, threads_per_block=64, shared_mem_per_block=64 * 1024)
        with pytest.raises(LaunchError):
            cfg.validate(GTX470)

    def test_validate_rejects_empty_grid(self):
        with pytest.raises(LaunchError):
            LaunchConfig(grid_blocks=0, threads_per_block=64).validate(GTX470)
