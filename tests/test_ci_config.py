"""Validate the CI pipeline definition.

``actionlint`` is not a baked-in dependency, so the tier-1 gate is a
structural check: the workflow must parse as YAML and contain the jobs
the repo's quality gates depend on (lint, test matrix, vectorized-backend
test pass, benchmark smoke) with the exact tier-1 pytest invocation.
"""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml", reason="PyYAML needed to parse the workflow")

_WORKFLOW = Path(__file__).resolve().parent.parent / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow():
    assert _WORKFLOW.is_file(), "CI workflow .github/workflows/ci.yml is missing"
    return yaml.safe_load(_WORKFLOW.read_text())


def _steps_text(job: dict) -> str:
    return "\n".join(str(step.get("run", "")) for step in job["steps"])


def test_triggers(workflow):
    # YAML 1.1 parses the bare key `on` as boolean True
    triggers = workflow.get("on", workflow.get(True))
    assert triggers is not None, "workflow has no trigger block"
    assert "pull_request" in triggers
    assert triggers["push"]["branches"] == ["main"]


def test_jobs_present(workflow):
    assert {
        "lint", "test", "test-vectorized", "test-arrayapi", "test-processes",
        "test-fastpath", "bench", "serve-smoke",
    } <= set(workflow["jobs"])


def test_concurrency_cancels_superseded_runs(workflow):
    """Pushes to the same ref must cancel the in-flight run."""
    group = workflow["concurrency"]
    assert group["cancel-in-progress"] is True
    assert "github.ref" in str(group["group"])


def test_every_job_has_a_timeout(workflow):
    """A hung step must fail its job, not hold the runner for hours."""
    for name, job in workflow["jobs"].items():
        minutes = job.get("timeout-minutes")
        assert isinstance(minutes, int) and 0 < minutes <= 60, (
            f"{name}: missing or unreasonable timeout-minutes"
        )


def test_lint_job_runs_ruff(workflow):
    text = _steps_text(workflow["jobs"]["lint"])
    assert "ruff check" in text
    assert "ruff format --check" in text


def test_test_job_matrix_and_command(workflow):
    job = workflow["jobs"]["test"]
    versions = job["strategy"]["matrix"]["python-version"]
    assert versions == ["3.10", "3.11", "3.12"]
    assert "PYTHONPATH=src python -m pytest -x -q" in _steps_text(job)


def test_vectorized_backend_job(workflow):
    """The tier-1 suite must also run once under REPRO_BACKEND=vectorized."""
    text = _steps_text(workflow["jobs"]["test-vectorized"])
    assert "REPRO_BACKEND=vectorized" in text
    assert "PYTHONPATH=src python -m pytest -x -q" in text


def test_arrayapi_backend_job(workflow):
    """The tier-1 suite must also run once under REPRO_BACKEND=arrayapi."""
    text = _steps_text(workflow["jobs"]["test-arrayapi"])
    assert "REPRO_BACKEND=arrayapi" in text
    assert "PYTHONPATH=src python -m pytest -x -q" in text


def test_process_sharding_job(workflow):
    """The process-sharding subset must run under explicit spawn semantics."""
    text = _steps_text(workflow["jobs"]["test-processes"])
    assert "REPRO_START_METHOD=spawn" in text
    assert "tests/detect/test_engine_processes.py" in text
    assert "tests/detect/test_pickling.py" in text
    assert "tests/video/test_shm.py" in text


def test_fastpath_job(workflow):
    """The full tier-1 suite must run under the exact fast path (the
    byte-identity oracle mode), and the fast-path bench smoke must
    publish + validate its artifact."""
    job = workflow["jobs"]["test-fastpath"]
    text = _steps_text(job)
    assert "REPRO_FASTPATH=exact" in text
    assert "PYTHONPATH=src python -m pytest -x -q" in text
    assert "benchmarks/test_fastpath.py" in text
    assert "REPRO_BENCH_SMOKE=1" in text
    assert "repro bench check BENCH_fastpath.json" in text
    uploads = {
        step["with"]["name"]: step["with"]
        for step in job["steps"]
        if "upload-artifact" in str(step.get("uses", ""))
    }
    assert uploads["BENCH_fastpath"]["path"] == "BENCH_fastpath.json"
    assert uploads["BENCH_fastpath"].get("if-no-files-found") == "error"


def test_bench_artifacts_are_checked(workflow):
    """Every job that produces BENCH_*.json must run ``repro bench
    check`` over what it produced, so a schema or invariant break fails
    the producing job directly."""
    bench = _steps_text(workflow["jobs"]["bench"])
    assert "repro bench check" in bench
    for artifact in (
        "BENCH_throughput.json",
        "BENCH_throughput-vectorized.json",
        "BENCH_throughput-processes.json",
        "BENCH_throughput-arrayapi.json",
    ):
        assert artifact in bench
    serve = _steps_text(workflow["jobs"]["serve-smoke"])
    assert "repro bench check" in serve
    assert "BENCH_serving.json" in serve
    assert "BENCH_serving-loadtest.json" in serve
    assert "BENCH_log_overhead.json" in serve


def test_serve_smoke_always_drains_the_server(workflow):
    """The CLI round trip must SIGTERM + wait the server even when the
    loadtest fails, then fail the step on the loadtest's own status —
    otherwise a failing loadtest leaks the background server."""
    job = workflow["jobs"]["serve-smoke"]
    script = next(
        str(step.get("run", ""))
        for step in job["steps"]
        if "repro loadtest" in str(step.get("run", ""))
    )
    assert "|| STATUS=$?" in script
    assert "kill -TERM" in script
    assert "wait" in script
    assert 'exit "$STATUS"' in script
    # the drain must come after the status capture, never before
    assert script.index("|| STATUS=$?") < script.index("kill -TERM")


def test_pip_caching(workflow):
    for name in (
        "lint", "test", "test-vectorized", "test-arrayapi", "test-processes",
        "test-fastpath", "bench", "serve-smoke",
    ):
        setup = next(
            step
            for step in workflow["jobs"][name]["steps"]
            if "setup-python" in str(step.get("uses", ""))
        )
        assert setup["with"]["cache"] == "pip", f"{name}: pip cache not enabled"


def test_bench_job_smoke_and_artifact(workflow):
    job = workflow["jobs"]["bench"]
    text = _steps_text(job)
    assert "REPRO_BENCH_SMOKE=1" in text
    assert "benchmarks/test_throughput_engine.py" in text
    # the smoke bench runs once per backend, and each run's artifact is
    # uploaded under a backend-tagged name
    assert "REPRO_BACKEND=vectorized" in text
    assert "REPRO_BENCH_OUTPUT=BENCH_throughput-vectorized.json" in text
    uploads = {
        step["with"]["name"]: step["with"]
        for step in job["steps"]
        if "upload-artifact" in str(step.get("uses", ""))
    }
    assert uploads["BENCH_throughput-reference"]["path"] == "BENCH_throughput.json"
    assert (
        uploads["BENCH_throughput-vectorized"]["path"]
        == "BENCH_throughput-vectorized.json"
    )
    # the process-sharding smoke run uploads its own mode-tagged artifact
    assert "REPRO_BENCH_MODE=processes" in text
    assert "REPRO_BENCH_OUTPUT=BENCH_throughput-processes.json" in text
    assert (
        uploads["BENCH_throughput-processes"]["path"]
        == "BENCH_throughput-processes.json"
    )
    # the arrayapi smoke drives the CLI directly, exercising the
    # --backend/--device surface and the schema-v4 provenance fields
    assert "--backend arrayapi" in text
    assert "--device list" in text
    assert (
        uploads["BENCH_throughput-arrayapi"]["path"]
        == "BENCH_throughput-arrayapi.json"
    )
    for name in (
        "BENCH_throughput-reference",
        "BENCH_throughput-vectorized",
        "BENCH_throughput-processes",
        "BENCH_throughput-arrayapi",
    ):
        assert uploads[name].get("if-no-files-found") == "error"


def test_serve_smoke_job(workflow):
    """The serving stack must be exercised end to end in CI: the serve
    test suite, the smoke-mode serving benchmark, and a real
    ``repro serve`` process driven by ``repro loadtest`` then drained
    with SIGTERM."""
    job = workflow["jobs"]["serve-smoke"]
    text = _steps_text(job)
    assert "tests/serve" in text
    assert "REPRO_BENCH_SMOKE=1" in text
    assert "benchmarks/test_serving.py" in text
    assert "repro serve" in text
    assert "repro loadtest" in text
    assert "kill -TERM" in text, "the CLI round trip must drain via SIGTERM"
    uploads = {
        step["with"]["name"]: step["with"]
        for step in job["steps"]
        if "upload-artifact" in str(step.get("uses", ""))
    }
    serving = uploads["BENCH_serving"]
    assert "BENCH_serving.json" in str(serving["path"])
    assert "BENCH_serving-loadtest.json" in str(serving["path"])
    assert "BENCH_log_overhead.json" in str(serving["path"])
    assert serving.get("if-no-files-found") == "error"


def test_serve_smoke_observability(workflow):
    """The CLI round trip must exercise the observability surface: JSON
    structured logs captured to a file, a ``/debug/flight`` dump fetched
    before the drain, exactly-once request accounting checked by grepping
    the log, the log-overhead bench validated, and the log + flight dump
    published as artifacts."""
    job = workflow["jobs"]["serve-smoke"]
    text = _steps_text(job)
    assert "benchmarks/test_log_overhead.py" in text
    script = next(
        str(step.get("run", ""))
        for step in job["steps"]
        if "repro loadtest" in str(step.get("run", ""))
    )
    assert "--log-format json" in script
    assert "2> serve.log" in script
    # flight dump comes from the live server, before the SIGTERM drain
    assert "/debug/flight" in script
    assert script.index("/debug/flight") < script.index("kill -TERM")
    # exactly-once accounting: requests logged == requests sent
    assert "--requests 24" in script
    assert 'grep -c \'"event": "request"\' serve.log' in script
    assert '-ne 24' in script
    uploads = {
        step["with"]["name"]: step["with"]
        for step in job["steps"]
        if "upload-artifact" in str(step.get("uses", ""))
    }
    obs = uploads["serve-observability"]
    assert "serve.log" in str(obs["path"])
    assert "FLIGHT_serve-smoke.json" in str(obs["path"])
    assert obs.get("if-no-files-found") == "error"


def test_serve_smoke_hot_swap(workflow):
    """The serve-smoke job must exercise the zero-downtime hot-swap end
    to end against a real ``repro serve`` process: pre-train both zoo
    models (so the swap window is load-warm-flip, never a bootstrap run),
    swap quick -> quick_baseline mid-loadtest via POST /v1/models/swap,
    verify the flip in /stats, and publish + validate BENCH_swap.json."""
    job = workflow["jobs"]["serve-smoke"]
    text = _steps_text(job)
    assert "repro train --recipe quick" in text
    assert "repro train --recipe quick_baseline" in text
    assert "repro bench swap" in text
    script = next(
        str(step.get("run", ""))
        for step in job["steps"]
        if "/v1/models/swap" in str(step.get("run", ""))
    )
    assert "--model quick" in script
    assert '"model": "quick_baseline"' in script
    # the swap fires while the loadtest is in flight, and the server is
    # always drained afterwards regardless of the verdict
    assert script.index("repro loadtest") < script.index("/v1/models/swap")
    assert script.index("/v1/models/swap") < script.index("kill -TERM")
    assert 'exit "$STATUS"' in script
    # the flip + zero-failure gate reads /stats and the loadtest artifact
    assert "/stats" in script
    assert "quick_baseline@" in script
    assert 'load["errors"] == 0' in script
    # BENCH_swap.json goes through the same bench-check + upload path as
    # every other serving artifact
    assert "BENCH_swap.json" in _steps_text(job)
    uploads = {
        step["with"]["name"]: step["with"]
        for step in job["steps"]
        if "upload-artifact" in str(step.get("uses", ""))
    }
    assert "BENCH_swap.json" in str(uploads["BENCH_serving"]["path"])
    assert "swap-serve.log" in str(uploads["serve-observability"]["path"])


def test_bench_job_records_and_uploads_trace(workflow):
    """The bench smoke job must run ``repro trace`` and upload its output."""
    job = workflow["jobs"]["bench"]
    trace_step = next(
        (step for step in job["steps"] if "repro trace" in str(step.get("run", ""))),
        None,
    )
    assert trace_step is not None, "no 'repro trace' step in the bench job"
    assert "TRACE_engine.json" in trace_step["run"]
    uploads = [
        step for step in job["steps"] if "upload-artifact" in str(step.get("uses", ""))
    ]
    trace_upload = next(
        (step for step in uploads if "TRACE_engine.json" in str(step["with"]["path"])),
        None,
    )
    assert trace_upload is not None, "trace output is not uploaded as an artifact"
    assert "TRACE_metrics.json" in str(trace_upload["with"]["path"])
    assert trace_upload["with"].get("if-no-files-found") == "error"
