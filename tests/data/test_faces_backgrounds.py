"""Tests for the synthetic face renderer and background generator."""

import numpy as np
import pytest

from repro.data.backgrounds import render_background, sample_patches
from repro.data.faces import (
    CANONICAL_LEFT_EYE,
    CANONICAL_RIGHT_EYE,
    FaceParams,
    face_eye_positions,
    render_face,
    render_face_chip,
    render_training_chip,
)
from repro.errors import ConfigurationError
from repro.utils.rng import rng_for


class TestFaceRenderer:
    def test_chip_shape_and_range(self):
        img = render_face_chip(24, FaceParams(), rng_for(0, "f"))
        assert img.shape == (24, 24)
        assert img.dtype == np.float32
        assert img.min() >= 0 and img.max() <= 255

    def test_arbitrary_sizes(self):
        for size in (16, 48, 96):
            assert render_face_chip(size, FaceParams(), rng_for(1, "f")).shape == (size, size)

    def test_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            render_face_chip(4, FaceParams(), rng_for(0, "f"))

    def test_haar_relevant_contrast(self):
        # the photometric structure the cascade keys on: eyes darker than
        # the cheek band below them
        img = render_face_chip(48, FaceParams(), rng_for(2, "f"))
        (lx, ly), _ = face_eye_positions(48, FaceParams())
        eye = img[int(ly) - 2 : int(ly) + 3, int(lx) - 2 : int(lx) + 3].mean()
        cheek = img[int(ly) + 8 : int(ly) + 13, int(lx) - 2 : int(lx) + 3].mean()
        assert eye < cheek

    def test_sampled_params_vary(self):
        rng = rng_for(3, "f")
        a, b = FaceParams.sample(rng), FaceParams.sample(rng)
        assert a != b

    def test_render_face_returns_params(self):
        img, params = render_face(24, rng_for(4, "f"))
        assert isinstance(params, FaceParams)
        assert img.shape == (24, 24)

    def test_eye_positions_respect_tilt(self):
        straight = face_eye_positions(48, FaceParams(tilt=0.0))
        tilted = face_eye_positions(48, FaceParams(tilt=0.2))
        assert straight != tilted
        # eyes stay horizontally ordered for small tilts
        assert tilted[0][0] < tilted[1][0]

    def test_canonical_eye_constants(self):
        assert CANONICAL_LEFT_EYE[0] < CANONICAL_RIGHT_EYE[0]
        assert CANONICAL_LEFT_EYE[1] == CANONICAL_RIGHT_EYE[1]


class TestTrainingChips:
    def test_shape(self):
        chip = render_training_chip(rng_for(5, "t"), 24)
        assert chip.shape == (24, 24)

    def test_variance_across_chips(self):
        rng = rng_for(6, "t")
        chips = np.stack([render_training_chip(rng, 24) for _ in range(8)])
        assert np.std(chips.mean(axis=(1, 2))) > 1.0  # appearance varies

    def test_deterministic_given_stream(self):
        a = render_training_chip(rng_for(7, "t"), 24)
        b = render_training_chip(rng_for(7, "t"), 24)
        np.testing.assert_array_equal(a, b)


class TestBackgrounds:
    def test_shape_and_range(self):
        bg = render_background(64, 96, rng_for(8, "b"))
        assert bg.shape == (64, 96)
        assert bg.min() >= 0 and bg.max() <= 255

    def test_clutter_increases_structure(self):
        calm = render_background(96, 96, rng_for(9, "b"), clutter=0.0)
        busy = render_background(96, 96, rng_for(9, "b"), clutter=1.0)
        # rectangle clutter adds strong intensity steps
        def edge_energy(img):
            return float(np.abs(np.diff(img, axis=1)).mean())
        assert edge_energy(busy) >= edge_energy(calm) * 0.8

    def test_rejects_bad_clutter(self):
        with pytest.raises(ConfigurationError):
            render_background(32, 32, rng_for(0, "b"), clutter=2.0)

    def test_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            render_background(2, 2, rng_for(0, "b"))

    def test_sample_patches(self):
        bg = render_background(64, 64, rng_for(10, "b"))
        patches = sample_patches(bg, 24, 5, rng_for(11, "b"))
        assert patches.shape == (5, 24, 24)

    def test_sample_patches_bounds(self):
        bg = render_background(32, 32, rng_for(12, "b"))
        with pytest.raises(ConfigurationError):
            sample_patches(bg, 64, 2, rng_for(0, "b"))
        with pytest.raises(ConfigurationError):
            sample_patches(bg, 16, 0, rng_for(0, "b"))
