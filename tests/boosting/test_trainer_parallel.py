"""Tests for the cascade trainer and the parallel (Fig. 8) iteration."""

import numpy as np
import pytest

from repro.boosting.cascade_trainer import (
    CascadeTrainer,
    default_negative_source,
    evaluate_cascade_on_windows,
)
from repro.boosting.dataset import build_training_set
from repro.boosting.parallel import ParallelTrainer, simulate_platform_curve
from repro.data.faces import render_training_chip
from repro.errors import TrainingError
from repro.gpusim.device import XEON_HOST_DUAL_E5472, XEON_HOST_I7_2600K
from repro.haar.enumeration import subsampled_feature_pool
from repro.utils.rng import rng_for


@pytest.fixture(scope="module")
def faces():
    rng = rng_for(0, "trainer-faces")
    return np.stack([render_training_chip(rng, 24) for _ in range(200)])


@pytest.fixture(scope="module")
def pool():
    return subsampled_feature_pool(350, seed=1)


@pytest.fixture(scope="module")
def trained(faces, pool):
    trainer = CascadeTrainer(pool, algorithm="gentle", min_hit_rate=0.99)
    return trainer.train(
        faces, stage_sizes=[3, 5, 8], negative_source=default_negative_source(7), seed=7
    )


class TestCascadeTrainer:
    def test_stage_structure(self, trained):
        cascade, reports = trained
        assert cascade.stage_sizes() == [3, 5, 8]
        assert len(reports) == 3

    def test_hit_rate_targets_met(self, trained):
        # hit rates are now measured on the held-out validation split
        _, reports = trained
        for r in reports:
            assert r.hit_rate >= 0.99

    def test_stage_fpr_below_one(self, trained):
        _, reports = trained
        for r in reports:
            assert r.false_positive_rate < 1.0

    def test_accepts_most_training_faces(self, trained, faces):
        cascade, _ = trained
        depth, _ = evaluate_cascade_on_windows(cascade, faces)
        accept = np.mean(depth == cascade.num_stages)
        assert accept > 0.9

    def test_rejects_most_fresh_backgrounds(self, trained):
        cascade, _ = trained
        fresh = default_negative_source(999)(0, 400)
        depth, _ = evaluate_cascade_on_windows(cascade, fresh)
        assert np.mean(depth == cascade.num_stages) < 0.25

    def test_depth_histogram_is_attentional(self, trained):
        # Most rejects must happen at stage 1 (the Fig. 7 property).
        cascade, _ = trained
        fresh = default_negative_source(555)(0, 600)
        depth, _ = evaluate_cascade_on_windows(cascade, fresh)
        rejected = depth < cascade.num_stages
        if rejected.sum() >= 10:
            first_stage = np.mean(depth[rejected] == 0)
            assert first_stage >= 0.4

    def test_meta_records_settings(self, trained):
        cascade, _ = trained
        assert cascade.meta["algorithm"] == "gentle"
        assert cascade.meta["pool_size"] == 350

    def test_ada_algorithm_works(self, faces, pool):
        trainer = CascadeTrainer(pool, algorithm="ada", min_hit_rate=0.99)
        cascade, reports = trainer.train(
            faces[:80], stage_sizes=[3, 4], negative_source=default_negative_source(3)
        )
        assert cascade.num_stages == 2

    def test_rejects_unknown_algorithm(self, pool):
        with pytest.raises(TrainingError):
            CascadeTrainer(pool, algorithm="xgboost")

    def test_rejects_empty_stage_sizes(self, faces, pool):
        trainer = CascadeTrainer(pool)
        with pytest.raises(TrainingError):
            trainer.train(faces, stage_sizes=[], negative_source=default_negative_source(1))

    def test_scores_give_reasonable_threshold_sweep(self, trained, faces):
        cascade, _ = trained
        depth, margins = evaluate_cascade_on_windows(cascade, faces)
        # accepted faces must hold positive margins at the last stage
        accepted = depth == cascade.num_stages
        assert np.all(margins[accepted] >= 0)


class TestParallelTrainer:
    @pytest.fixture(scope="class")
    def setup(self, pool):
        ts = build_training_set(100, 100, seed=2)
        return ts, ParallelTrainer(ts, pool, chunk_size=32)

    def test_chunk_partitioning(self, setup, pool):
        _, pt = setup
        assert pt.n_chunks >= 4  # at least one per family

    def test_result_independent_of_workers(self, setup):
        _, pt = setup
        w1, _ = pt.run_iteration(n_workers=1)
        w4, _ = pt.run_iteration(n_workers=4)
        assert w1 == w4

    def test_matches_gentleboost_first_round(self, setup, pool):
        from repro.boosting.gentleboost import GentleBoost

        ts, pt = setup
        weak, _ = pt.run_iteration(n_workers=2)
        reference = GentleBoost(pool).fit(ts, 1).classifiers[0]
        # same feature chosen; stump parameters equal
        assert weak == reference

    def test_timing_populated(self, setup):
        _, pt = setup
        _, timing = pt.run_iteration(n_workers=2)
        assert len(timing.chunks) == pt.n_chunks
        assert timing.wall_seconds > 0
        assert 0.5 < timing.parallel_fraction <= 1.0

    def test_rejects_bad_workers(self, setup):
        _, pt = setup
        with pytest.raises(TrainingError):
            pt.run_iteration(n_workers=0)


class TestPlatformCurve:
    @pytest.fixture(scope="class")
    def timing(self):
        # Deterministic chunk profile: the model under test is the platform
        # curve, not wall-clock measurement noise (the CI host has one core
        # and jitters).  60 chunks with mild size variation + a small serial
        # reduction, like a real full-pool iteration produces.
        from repro.boosting.parallel import ChunkTiming, IterationTiming

        timing = IterationTiming()
        for i in range(60):
            timing.chunks.append(
                ChunkTiming(family="edge", n_features=512, seconds=0.010 + 0.002 * (i % 5))
            )
        timing.reduce_seconds = 0.01
        timing.wall_seconds = timing.parallel_seconds + timing.reduce_seconds
        return timing

    def test_measured_timing_also_produces_sane_curve(self, pool):
        ts = build_training_set(80, 80, seed=4)
        pt = ParallelTrainer(ts, pool, chunk_size=16)
        pt.run_iteration(n_workers=1)  # warmup: exclude allocator/import noise
        _, measured = pt.run_iteration(n_workers=1)
        curve = simulate_platform_curve(measured, XEON_HOST_I7_2600K)
        assert curve[8] < curve[1]
        assert curve[1] / curve[8] <= XEON_HOST_I7_2600K.bandwidth_cap_speedup + 1e-9

    def test_monotone_non_increasing(self, timing):
        for host in (XEON_HOST_I7_2600K, XEON_HOST_DUAL_E5472):
            curve = simulate_platform_curve(timing, host)
            times = [curve[t] for t in sorted(curve)]
            for a, b in zip(times, times[1:]):
                assert b <= a * 1.0001

    def test_speedup_in_paper_band(self, timing):
        # Fig. 8: ~3.5x at 8 threads on both platforms.
        for host in (XEON_HOST_I7_2600K, XEON_HOST_DUAL_E5472):
            curve = simulate_platform_curve(timing, host)
            speedup = curve[1] / curve[8]
            assert 3.0 <= speedup <= 4.0

    def test_i7_about_twice_the_xeon(self, timing):
        i7 = simulate_platform_curve(timing, XEON_HOST_I7_2600K)
        xeon = simulate_platform_curve(timing, XEON_HOST_DUAL_E5472)
        assert xeon[1] / i7[1] == pytest.approx(2.0, rel=0.05)

    def test_rejects_empty_timing(self):
        from repro.boosting.parallel import IterationTiming

        with pytest.raises(TrainingError):
            simulate_platform_curve(IterationTiming(), XEON_HOST_I7_2600K)
