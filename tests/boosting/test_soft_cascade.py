"""Tests for soft cascades (calibration, evaluation, serialisation)."""

import numpy as np
import pytest

from repro.boosting.soft_cascade import (
    SoftCascade,
    calibrate_soft_cascade,
    evaluate_soft_cascade_on_windows,
)
from repro.data.backgrounds import render_background, sample_patches
from repro.data.faces import render_training_chip
from repro.errors import CascadeFormatError, TrainingError
from repro.utils.rng import rng_for
from repro.zoo import quick_cascade


@pytest.fixture(scope="module")
def cascade():
    return quick_cascade(seed=0)


@pytest.fixture(scope="module")
def faces():
    rng = rng_for(0, "soft-faces")
    return np.stack([render_training_chip(rng, 24) for _ in range(140)])


@pytest.fixture(scope="module")
def soft(cascade, faces):
    return calibrate_soft_cascade(cascade, faces, miss_budget=0.03)


@pytest.fixture(scope="module")
def negatives():
    rng = rng_for(1, "soft-negs")
    bg = render_background(220, 220, rng)
    return sample_patches(bg, 24, 300, rng)


class TestCalibration:
    def test_chain_flattens_all_stages(self, cascade, soft):
        assert soft.length == cascade.num_weak_classifiers

    def test_miss_budget_respected_on_calibration_set(self, soft, faces):
        exit_pos, _ = evaluate_soft_cascade_on_windows(soft, faces)
        survived = np.mean(exit_pos == soft.length)
        assert survived >= 1.0 - 0.03 - 0.01

    def test_trace_monotone_enough_to_reject_negatives(self, soft, negatives):
        exit_pos, _ = evaluate_soft_cascade_on_windows(soft, negatives)
        # negatives die early: far fewer classifiers than the chain length
        assert exit_pos.mean() < soft.length * 0.25

    def test_soft_cheaper_than_staged_on_negatives(self, cascade, soft, negatives):
        from repro.boosting.cascade_trainer import evaluate_cascade_on_windows

        depth, _ = evaluate_cascade_on_windows(cascade, negatives)
        sizes = np.array(cascade.stage_sizes())
        cum = np.concatenate([[0], np.cumsum(sizes)])
        staged_work = cum[np.minimum(depth + 1, cascade.num_stages)].mean()
        soft_exit, _ = evaluate_soft_cascade_on_windows(soft, negatives)
        assert soft_exit.mean() <= staged_work

    def test_zero_budget_keeps_all_faces(self, cascade, faces):
        soft0 = calibrate_soft_cascade(cascade, faces, miss_budget=0.0)
        exit_pos, _ = evaluate_soft_cascade_on_windows(soft0, faces)
        assert np.all(exit_pos == soft0.length)

    def test_rejects_bad_budget(self, cascade, faces):
        with pytest.raises(TrainingError):
            calibrate_soft_cascade(cascade, faces, miss_budget=0.7)

    def test_rejects_too_few_faces(self, cascade):
        with pytest.raises(TrainingError):
            calibrate_soft_cascade(cascade, np.zeros((2, 24, 24)))


class TestContainer:
    def test_json_roundtrip(self, soft, tmp_path):
        path = tmp_path / "soft.json"
        soft.save(path)
        loaded = SoftCascade.load(path)
        assert loaded == soft

    def test_trace_length_validated(self, soft):
        with pytest.raises(CascadeFormatError):
            SoftCascade(classifiers=soft.classifiers, rejection_trace=(0.0,))

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("nope")
        with pytest.raises(CascadeFormatError):
            SoftCascade.load(path)

    def test_empty_chain_rejected(self):
        with pytest.raises(CascadeFormatError):
            SoftCascade(classifiers=(), rejection_trace=())


class TestSoftKernel:
    def test_matches_window_oracle(self, soft):
        from repro.detect.soft_kernel import soft_cascade_eval_kernel

        rng = rng_for(2, "soft-kernel")
        img = render_background(56, 72, rng)
        result = soft_cascade_eval_kernel(img, soft, stream=1)
        ys = np.array([0, 7, 19, 30])
        xs = np.array([0, 11, 33, 44])
        wins = np.stack([img[y : y + 24, x : x + 24] for y, x in zip(ys, xs)])
        oracle_exit, _ = evaluate_soft_cascade_on_windows(soft, wins)
        np.testing.assert_array_equal(result.exit_map[ys, xs], oracle_exit)

    def test_exit_map_bounds(self, soft):
        from repro.detect.soft_kernel import soft_cascade_eval_kernel

        rng = rng_for(3, "soft-kernel")
        img = render_background(48, 48, rng)
        result = soft_cascade_eval_kernel(img, soft, stream=1)
        assert result.exit_map.min() >= 1
        assert result.exit_map.max() <= soft.length

    def test_launch_valid(self, soft):
        from repro.detect.soft_kernel import soft_cascade_eval_kernel
        from repro.gpusim.device import GTX470

        rng = rng_for(4, "soft-kernel")
        img = render_background(48, 64, rng)
        result = soft_cascade_eval_kernel(img, soft, stream=2)
        result.launch.validate(GTX470)
        assert result.launch.stream == 2

    def test_mean_classifiers_metric(self, soft):
        from repro.detect.soft_kernel import soft_cascade_eval_kernel

        rng = rng_for(5, "soft-kernel")
        img = render_background(48, 48, rng)
        result = soft_cascade_eval_kernel(img, soft, stream=1)
        assert 1.0 <= result.mean_classifiers_per_window <= soft.length
