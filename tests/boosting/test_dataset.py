"""Tests for training-set packing (the Fig. 4 dataset-matrix layout)."""

import numpy as np
import pytest

from repro.boosting.dataset import PACKED_ROWS, TrainingSet, build_training_set, pack_windows
from repro.errors import TrainingError


class TestPackWindows:
    def test_shape(self):
        windows = np.random.default_rng(0).uniform(0, 255, (7, 24, 24))
        matrix, sigmas = pack_windows(windows)
        assert matrix.shape == (PACKED_ROWS, 7)
        assert sigmas.shape == (7,)

    def test_packed_rows_is_625(self):
        assert PACKED_ROWS == 25 * 25

    def test_column_is_normalised_integral(self):
        rng = np.random.default_rng(1)
        w = rng.uniform(0, 255, (1, 24, 24))
        matrix, sigmas = pack_windows(w)
        ii = np.zeros((25, 25))
        ii[1:, 1:] = np.cumsum(np.cumsum(w[0], 0), 1)
        np.testing.assert_allclose(matrix[:, 0], ii.ravel() / sigmas[0])

    def test_sigma_is_window_std(self):
        rng = np.random.default_rng(2)
        w = rng.uniform(0, 255, (3, 24, 24))
        _, sigmas = pack_windows(w)
        np.testing.assert_allclose(sigmas, w.reshape(3, -1).std(axis=1))

    def test_flat_window_sigma_floored(self):
        w = np.full((1, 24, 24), 55.0)
        _, sigmas = pack_windows(w)
        assert sigmas[0] == 1.0

    def test_rejects_wrong_shape(self):
        with pytest.raises(TrainingError):
            pack_windows(np.zeros((3, 20, 20)))

    def test_normalisation_makes_responses_contrast_invariant(self):
        # Scaling a window's contrast must not change packed responses.
        rng = np.random.default_rng(3)
        w = rng.uniform(0, 255, (1, 24, 24))
        w_scaled = (w - w.mean()) * 3.0 + w.mean()
        a, _ = pack_windows(w)
        b, _ = pack_windows(w_scaled)
        # differences of integral entries (feature responses) match
        diff_a = a[100, 0] - a[50, 0]
        diff_b = b[100, 0] - b[50, 0]
        assert diff_a == pytest.approx(diff_b, rel=1e-6, abs=1e-4)


class TestTrainingSet:
    def test_from_windows_labels(self):
        faces = np.random.default_rng(0).uniform(0, 255, (4, 24, 24))
        bgs = np.random.default_rng(1).uniform(0, 255, (6, 24, 24))
        ts = TrainingSet.from_windows(faces, bgs)
        assert ts.n_faces == 4
        assert ts.n_backgrounds == 6
        assert ts.n_samples == 10

    def test_replace_negatives_keeps_faces(self):
        faces = np.random.default_rng(0).uniform(0, 255, (4, 24, 24))
        bgs = np.random.default_rng(1).uniform(0, 255, (6, 24, 24))
        ts = TrainingSet.from_windows(faces, bgs)
        new_bgs = np.random.default_rng(2).uniform(0, 255, (3, 24, 24))
        ts2 = ts.replace_negatives(new_bgs)
        assert ts2.n_faces == 4
        assert ts2.n_backgrounds == 3
        np.testing.assert_array_equal(ts2.data[:, :4], ts.data[:, :4])

    def test_rejects_empty(self):
        with pytest.raises(TrainingError):
            TrainingSet.from_windows(np.zeros((0, 24, 24)), np.zeros((3, 24, 24)))

    def test_rejects_bad_labels(self):
        with pytest.raises(TrainingError):
            TrainingSet(
                data=np.zeros((PACKED_ROWS, 2)),
                labels=np.array([0, 1], dtype=np.int8),
                sigmas=np.ones(2),
            )

    def test_rejects_inconsistent_shapes(self):
        with pytest.raises(TrainingError):
            TrainingSet(
                data=np.zeros((PACKED_ROWS, 3)),
                labels=np.array([1, -1], dtype=np.int8),
                sigmas=np.ones(2),
            )


class TestBuildTrainingSet:
    def test_sizes(self):
        ts = build_training_set(20, 30, seed=0)
        assert ts.n_faces == 20
        assert ts.n_backgrounds == 30

    def test_deterministic(self):
        a = build_training_set(10, 10, seed=5)
        b = build_training_set(10, 10, seed=5)
        np.testing.assert_array_equal(a.data, b.data)

    def test_seeds_differ(self):
        a = build_training_set(10, 10, seed=5)
        b = build_training_set(10, 10, seed=6)
        assert not np.array_equal(a.data, b.data)

    def test_rejects_zero(self):
        with pytest.raises(TrainingError):
            build_training_set(0, 5)
