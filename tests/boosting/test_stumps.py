"""Tests for binned stump fitting against the exact sort-based oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.boosting.stumps import (
    fit_classification_stumps,
    fit_regression_stumps,
    fit_stump_exact,
    quantize_responses,
)
from repro.errors import TrainingError


def stump_error(r, w, z, theta, left, right):
    pred = np.where(r <= theta, left, right)
    return float(np.sum(w * (z - pred) ** 2))


class TestQuantize:
    def test_bin_indices_in_range(self):
        r = np.random.default_rng(0).normal(size=(5, 100))
        binned = quantize_responses(r, 16)
        assert binned.bins.max() < 16
        assert binned.bins.dtype == np.uint8

    def test_many_bins_uses_uint16(self):
        r = np.random.default_rng(0).normal(size=(2, 50))
        assert quantize_responses(r, 1024).bins.dtype == np.uint16

    def test_monotone_binning(self):
        r = np.array([[0.0, 1.0, 2.0, 3.0, 10.0]])
        binned = quantize_responses(r, 8)
        assert list(binned.bins[0]) == sorted(binned.bins[0])

    def test_threshold_value_brackets_bin(self):
        r = np.array([np.linspace(0, 64, 65)])
        binned = quantize_responses(r, 64)
        theta = binned.threshold_value(0, 10)
        assert 0 < theta < 64

    def test_rejects_bad_bins(self):
        with pytest.raises(TrainingError):
            quantize_responses(np.zeros((2, 3)), 1)

    def test_rejects_1d(self):
        with pytest.raises(TrainingError):
            quantize_responses(np.zeros(5), 8)


class TestRegressionStumps:
    def test_perfectly_separable(self):
        r = np.array([np.concatenate([np.zeros(50), np.ones(50) * 10])])
        z = np.concatenate([-np.ones(50), np.ones(50)])
        w = np.full(100, 0.01)
        fits = fit_regression_stumps(quantize_responses(r, 32), w, z)
        assert fits.errors[0] == pytest.approx(0.0, abs=1e-9)
        assert fits.lefts[0] == pytest.approx(-1.0)
        assert fits.rights[0] == pytest.approx(1.0)
        assert 0 < fits.thresholds[0] < 10

    def test_picks_most_discriminative_feature(self):
        rng = np.random.default_rng(1)
        z = np.sign(rng.normal(size=200))
        noise = rng.normal(size=(3, 200))
        signal = z * 5 + rng.normal(size=200) * 0.1
        r = np.vstack([noise[0], signal, noise[1]])
        fits = fit_regression_stumps(quantize_responses(r, 64), np.full(200, 1 / 200), z)
        assert fits.best() == 1

    def test_close_to_exact_oracle(self):
        rng = np.random.default_rng(2)
        r = rng.normal(size=(1, 300))
        z = np.sign(r[0] + rng.normal(size=300) * 0.5)
        w = rng.uniform(0.1, 1.0, 300)
        w /= w.sum()
        binned_fit = fit_regression_stumps(quantize_responses(r, 256), w, z)
        theta_e, left_e, right_e, err_e = fit_stump_exact(r[0], w, z)
        # binned error within a small margin of the exact optimum
        assert binned_fit.errors[0] <= err_e + 0.02 * abs(err_e) + 1e-3

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_error_formula_consistent(self, seed):
        rng = np.random.default_rng(seed)
        r = rng.normal(size=(1, 80))
        z = np.sign(rng.normal(size=80))
        w = rng.uniform(0.0, 1.0, 80)
        fits = fit_regression_stumps(quantize_responses(r, 32), w, z)
        recomputed = stump_error(
            r[0], w, z, fits.thresholds[0], fits.lefts[0], fits.rights[0]
        )
        # the reported error must equal the loss of the reported stump
        assert fits.errors[0] == pytest.approx(recomputed, rel=1e-6, abs=1e-9)

    def test_rejects_negative_weights(self):
        r = np.zeros((1, 4))
        with pytest.raises(TrainingError):
            fit_regression_stumps(
                quantize_responses(r, 4), np.array([1, -1, 1, 1.0]), np.ones(4)
            )

    def test_rejects_mismatched_sizes(self):
        r = np.zeros((1, 4))
        with pytest.raises(TrainingError):
            fit_regression_stumps(quantize_responses(r, 4), np.ones(3), np.ones(4))


class TestClassificationStumps:
    def test_perfect_split(self):
        r = np.array([np.concatenate([np.zeros(10), np.ones(10) * 5])])
        y = np.concatenate([-np.ones(10), np.ones(10)])
        fits = fit_classification_stumps(quantize_responses(r, 16), np.full(20, 0.05), y)
        assert fits.errors[0] == pytest.approx(0.0, abs=1e-12)
        assert fits.lefts[0] == -1.0 and fits.rights[0] == 1.0

    def test_inverted_polarity_found(self):
        r = np.array([np.concatenate([np.ones(10) * 5, np.zeros(10)])])
        y = np.concatenate([-np.ones(10), np.ones(10)])
        fits = fit_classification_stumps(quantize_responses(r, 16), np.full(20, 0.05), y)
        assert fits.errors[0] == pytest.approx(0.0, abs=1e-12)
        assert fits.lefts[0] == 1.0 and fits.rights[0] == -1.0

    def test_votes_are_unit(self):
        rng = np.random.default_rng(3)
        r = rng.normal(size=(4, 60))
        y = np.sign(rng.normal(size=60))
        fits = fit_classification_stumps(quantize_responses(r, 16), np.full(60, 1 / 60), y)
        assert set(np.unique(fits.lefts)) <= {-1.0, 1.0}
        assert np.all(fits.lefts == -fits.rights)

    def test_rejects_non_pm1_labels(self):
        r = np.zeros((1, 4))
        with pytest.raises(TrainingError):
            fit_classification_stumps(quantize_responses(r, 4), np.ones(4), np.array([0, 1, 1, 1.0]))

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_error_at_most_half_total_weight(self, seed):
        rng = np.random.default_rng(seed)
        r = rng.normal(size=(2, 50))
        y = np.sign(rng.normal(size=50))
        y[y == 0] = 1.0
        w = rng.uniform(0.01, 1.0, 50)
        fits = fit_classification_stumps(quantize_responses(r, 32), w, y)
        # searching both polarities guarantees error <= half the mass
        assert np.all(fits.errors <= w.sum() / 2 + 1e-9)


class TestExactOracle:
    def test_constant_targets(self):
        r = np.array([1.0, 2.0, 3.0])
        theta, left, right, err = fit_stump_exact(r, np.ones(3), np.ones(3))
        assert err == pytest.approx(0.0, abs=1e-12)

    def test_identical_responses_degenerate(self):
        r = np.ones(5)
        z = np.array([1.0, -1, 1, -1, 1])
        theta, left, right, err = fit_stump_exact(r, np.ones(5), z)
        assert left == pytest.approx(right)
