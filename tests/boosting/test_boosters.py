"""Tests for GentleBoost / AdaBoost and the feature-response machinery."""

import numpy as np
import pytest

from repro.boosting.adaboost import AdaBoost
from repro.boosting.dataset import build_training_set
from repro.boosting.gentleboost import GentleBoost
from repro.boosting.responses import compute_responses, projection_matrix
from repro.errors import TrainingError
from repro.haar.enumeration import subsampled_feature_pool
from repro.haar.features import feature_values_at
from repro.image.integral import integral_image


@pytest.fixture(scope="module")
def training_set():
    return build_training_set(120, 120, seed=3)


@pytest.fixture(scope="module")
def pool():
    return subsampled_feature_pool(400, seed=0)


class TestResponses:
    def test_projection_matrix_shape(self, pool):
        proj = projection_matrix(pool[:10])
        assert proj.shape == (10, 625)

    def test_responses_match_direct_feature_eval(self, training_set, pool):
        # Column p of the dataset is a normalised padded integral; the
        # response must equal evaluating the feature on that window.
        rng = np.random.default_rng(0)
        windows = rng.uniform(0, 255, (3, 24, 24))
        from repro.boosting.dataset import pack_windows

        data, sigmas = pack_windows(windows)
        responses = compute_responses(pool[:5], data)
        for j, feature in enumerate(pool[:5]):
            for i in range(3):
                ii = integral_image(windows[i])
                direct = feature_values_at(ii, feature, np.array([0]), np.array([0]))[0]
                assert responses[j, i] == pytest.approx(direct / sigmas[i], rel=1e-9)

    def test_rejects_empty_pool(self):
        with pytest.raises(TrainingError):
            projection_matrix([])

    def test_rejects_bad_matrix(self, pool):
        with pytest.raises(TrainingError):
            compute_responses(pool[:2], np.zeros((100, 5)))


class TestGentleBoost:
    def test_training_error_decreases(self, training_set, pool):
        result = GentleBoost(pool).fit(training_set, 12)
        assert result.train_errors[-1] <= result.train_errors[0]
        assert result.train_errors[-1] < 0.2

    def test_round_count(self, training_set, pool):
        result = GentleBoost(pool).fit(training_set, 5)
        assert result.n_rounds == 5
        assert len(result.train_errors) == 5

    def test_scores_separate_classes(self, training_set, pool):
        result = GentleBoost(pool).fit(training_set, 10)
        y = training_set.labels
        assert result.scores[y == 1].mean() > result.scores[y == -1].mean()

    def test_deterministic(self, training_set, pool):
        a = GentleBoost(pool).fit(training_set, 4)
        b = GentleBoost(pool).fit(training_set, 4)
        assert a.classifiers == b.classifiers

    def test_callback_invoked(self, training_set, pool):
        seen = []
        GentleBoost(pool).fit(training_set, 3, callback=lambda m, w: seen.append(m))
        assert seen == [0, 1, 2]

    def test_stump_outputs_bounded(self, training_set, pool):
        # Gentle stumps are weighted means of +-1 targets: always in [-1, 1].
        result = GentleBoost(pool).fit(training_set, 8)
        eps = 1e-9
        for c in result.classifiers:
            assert -1.0 - eps <= c.left <= 1.0 + eps
            assert -1.0 - eps <= c.right <= 1.0 + eps

    def test_rejects_zero_rounds(self, training_set, pool):
        with pytest.raises(TrainingError):
            GentleBoost(pool).fit(training_set, 0)

    def test_rejects_empty_pool(self):
        with pytest.raises(TrainingError):
            GentleBoost([])


class TestAdaBoost:
    def test_training_error_decreases(self, training_set, pool):
        result = AdaBoost(pool).fit(training_set, 12)
        assert result.train_errors[-1] <= result.train_errors[0]

    def test_votes_are_symmetric_alpha(self, training_set, pool):
        result = AdaBoost(pool).fit(training_set, 6)
        for c in result.classifiers:
            assert c.left == pytest.approx(-c.right)
            assert abs(c.right) > 0

    def test_deterministic(self, training_set, pool):
        a = AdaBoost(pool).fit(training_set, 4)
        b = AdaBoost(pool).fit(training_set, 4)
        assert a.classifiers == b.classifiers

    def test_comparable_to_gentleboost_on_easy_data(self, training_set, pool):
        gentle = GentleBoost(pool).fit(training_set, 10)
        ada = AdaBoost(pool).fit(training_set, 10)
        assert abs(gentle.train_errors[-1] - ada.train_errors[-1]) < 0.15
