"""Tests for detection/GT matching, ROC sweeps and synthetic eval sets."""

import numpy as np
import pytest

from repro.detect.detector import Detection
from repro.errors import ConfigurationError, EvaluationError
from repro.evaluation.datasets import background_dataset, mugshot_dataset
from repro.evaluation.matching import ScoredDetection, match_detections
from repro.evaluation.roc import roc_curve
from repro.video.synthesis import FaceAnnotation


def detection(x, y, size, score=1.0):
    return Detection(
        x=x, y=y, size=size, score=score,
        left_eye=(x + 0.33 * size, y + 0.40 * size),
        right_eye=(x + 0.67 * size, y + 0.40 * size),
    )


def annotation(x, y, size):
    return FaceAnnotation(
        x=x, y=y, size=size,
        left_eye=(x + 0.33 * size, y + 0.40 * size),
        right_eye=(x + 0.67 * size, y + 0.40 * size),
    )


class TestMatching:
    def test_perfect_match(self):
        result = match_detections([detection(10, 10, 40)], [annotation(10, 10, 40)])
        assert result.tp == 1 and result.fp == 0 and result.fn == 0

    def test_no_detections(self):
        result = match_detections([], [annotation(0, 0, 30)])
        assert result.fn == 1 and result.tp == 0

    def test_no_truth(self):
        result = match_detections([detection(0, 0, 30)], [])
        assert result.fp == 1

    def test_far_detection_is_fp_and_fn(self):
        result = match_detections([detection(200, 200, 30)], [annotation(0, 0, 30)])
        assert result.tp == 0 and result.fp == 1 and result.fn == 1

    def test_one_to_one_despite_two_candidates(self):
        dets = [detection(10, 10, 40), detection(12, 10, 40)]
        result = match_detections(dets, [annotation(10, 10, 40)])
        assert result.tp == 1 and result.fp == 1

    def test_hungarian_resolves_crossing(self):
        # det0 slightly off face1, det1 exactly on face0: the assignment
        # must not greedily lock det0 onto face0.
        dets = [detection(52, 50, 40), detection(10, 10, 40)]
        truth = [annotation(10, 10, 40), annotation(50, 50, 40)]
        result = match_detections(dets, truth)
        assert result.tp == 2

    def test_scored_labels(self):
        dets = [detection(10, 10, 40, score=7.0), detection(300, 10, 40, score=2.0)]
        result = match_detections(dets, [annotation(10, 10, 40)])
        scored = result.scored(dets)
        assert scored[0].matched and scored[0].score == 7.0
        assert not scored[1].matched

    def test_rejects_bad_threshold(self):
        with pytest.raises(EvaluationError):
            match_detections([], [], threshold=0.0)


class TestRocCurve:
    def samples(self):
        return [
            ScoredDetection(score=9.0, matched=True, distance=0.1),
            ScoredDetection(score=8.0, matched=True, distance=0.2),
            ScoredDetection(score=7.0, matched=False, distance=np.inf),
            ScoredDetection(score=5.0, matched=True, distance=0.3),
            ScoredDetection(score=2.0, matched=False, distance=np.inf),
        ]

    def test_curve_monotone(self):
        curve = roc_curve(self.samples(), n_faces=4)
        assert list(curve.tpr) == sorted(curve.tpr)
        assert list(curve.fp) == sorted(curve.fp)

    def test_endpoint_totals(self):
        curve = roc_curve(self.samples(), n_faces=4)
        assert curve.tpr[-1] == pytest.approx(3 / 4)
        assert curve.fp[-1] == 2

    def test_tpr_at_fp(self):
        curve = roc_curve(self.samples(), n_faces=4)
        assert curve.tpr_at_fp(0) == pytest.approx(2 / 4)
        assert curve.tpr_at_fp(10) == pytest.approx(3 / 4)

    def test_auc_normalised_bounded(self):
        curve = roc_curve(self.samples(), n_faces=4)
        assert 0.0 <= curve.auc_normalised(5) <= 1.0

    def test_better_detector_higher_auc(self):
        good = [ScoredDetection(9 - i, True, 0.1) for i in range(4)] + [
            ScoredDetection(1.0, False, np.inf)
        ]
        bad = [ScoredDetection(9 - i, i % 2 == 0, 0.1) for i in range(4)]
        assert roc_curve(good, 4).auc_normalised(3) > roc_curve(bad, 4).auc_normalised(3)

    def test_empty_samples(self):
        curve = roc_curve([], n_faces=3)
        assert curve.tpr_at_fp(100) == 0.0

    def test_rejects_zero_faces(self):
        with pytest.raises(EvaluationError):
            roc_curve([], n_faces=0)

    def test_rejects_bad_auc_bound(self):
        with pytest.raises(EvaluationError):
            roc_curve(self.samples(), 4).auc_normalised(0)


class TestDatasets:
    def test_mugshots_have_one_face(self):
        for sample in mugshot_dataset(4, seed=1):
            assert len(sample.truth) == 1
            assert sample.image.shape == (192, 192)

    def test_mugshot_face_large_and_centred(self):
        for sample in mugshot_dataset(4, seed=2):
            t = sample.truth[0]
            assert t.size >= 0.4 * 192
            cx, cy = t.center
            assert abs(cx - 96) < 40 and abs(cy - 96) < 40

    def test_backgrounds_faceless(self):
        for sample in background_dataset(3, seed=3):
            assert sample.truth == []

    def test_deterministic(self):
        a = mugshot_dataset(2, seed=9)
        b = mugshot_dataset(2, seed=9)
        np.testing.assert_array_equal(a[0].image, b[0].image)

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            mugshot_dataset(0)
        with pytest.raises(ConfigurationError):
            background_dataset(0)
