"""Tests for S metrics and the from-scratch Hungarian algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.errors import EvaluationError
from repro.evaluation.hungarian import hungarian
from repro.evaluation.metrics import s_eyes, s_square


class TestSSquare:
    def test_identical_boxes(self):
        assert s_square((0, 0, 10, 10), (0, 0, 10, 10)) == 1.0

    def test_disjoint_boxes(self):
        assert s_square((0, 0, 10, 10), (20, 20, 5, 5)) == 0.0

    def test_half_overlap(self):
        # two 10x10 boxes shifted by 5: inter 50, union 150
        assert s_square((0, 0, 10, 10), (5, 0, 10, 10)) == pytest.approx(1 / 3)

    def test_symmetric(self):
        a, b = (0, 0, 8, 12), (3, 2, 10, 6)
        assert s_square(a, b) == pytest.approx(s_square(b, a))

    def test_containment(self):
        assert s_square((0, 0, 10, 10), (2, 2, 5, 5)) == pytest.approx(25 / 100)

    def test_rejects_degenerate(self):
        with pytest.raises(EvaluationError):
            s_square((0, 0, 0, 10), (0, 0, 10, 10))

    @given(
        st.floats(-50, 50), st.floats(-50, 50), st.floats(1, 30), st.floats(1, 30),
        st.floats(-50, 50), st.floats(-50, 50), st.floats(1, 30), st.floats(1, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_zero_one(self, ax, ay, aw, ah, bx, by, bw, bh):
        s = s_square((ax, ay, aw, ah), (bx, by, bw, bh))
        assert 0.0 <= s <= 1.0 + 1e-12


class TestSEyes:
    def test_perfect_prediction_zero(self):
        assert s_eyes((10, 10), (20, 10), (10, 10), (20, 10)) == 0.0

    def test_uniform_shift(self):
        # both eyes off by 1px with inter-ocular distance 10 -> 0.2
        assert s_eyes((11, 10), (21, 10), (10, 10), (20, 10)) == pytest.approx(0.2)

    def test_uses_smaller_eye_distance(self):
        # predicted eyes 20 apart, truth 10 apart: denominator is 10
        value = s_eyes((0, 0), (20, 0), (0, 1), (10, 1))
        assert value == pytest.approx((1 + np.hypot(10, 1)) / 10)

    def test_rejects_degenerate_eyes(self):
        with pytest.raises(EvaluationError):
            s_eyes((5, 5), (5, 5), (5, 5), (5, 5))


class TestHungarian:
    def test_identity_optimal(self):
        cost = np.array([[1.0, 10.0], [10.0, 1.0]])
        pairs, total = hungarian(cost)
        assert pairs == [(0, 0), (1, 1)]
        assert total == 2.0

    def test_cross_assignment(self):
        cost = np.array([[10.0, 1.0], [1.0, 10.0]])
        pairs, total = hungarian(cost)
        assert pairs == [(0, 1), (1, 0)]
        assert total == 2.0

    def test_rectangular_more_cols(self):
        cost = np.array([[5.0, 1.0, 9.0]])
        pairs, total = hungarian(cost)
        assert pairs == [(0, 1)]
        assert total == 1.0

    def test_rectangular_more_rows(self):
        cost = np.array([[5.0], [1.0], [9.0]])
        pairs, total = hungarian(cost)
        assert pairs == [(1, 0)]
        assert total == 1.0

    def test_empty(self):
        pairs, total = hungarian(np.zeros((0, 3)))
        assert pairs == [] and total == 0.0

    def test_rejects_nan(self):
        with pytest.raises(EvaluationError):
            hungarian(np.array([[np.nan, 1.0]]))

    def test_rejects_1d(self):
        with pytest.raises(EvaluationError):
            hungarian(np.ones(4))

    @given(st.integers(0, 10**6), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_matches_scipy_total_cost(self, seed, n, m):
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0, 100, (n, m))
        _, total = hungarian(cost)
        rows, cols = linear_sum_assignment(cost)
        assert total == pytest.approx(float(cost[rows, cols].sum()), rel=1e-9)

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_assignment_is_a_matching(self, seed):
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0, 10, (5, 7))
        pairs, _ = hungarian(cost)
        rows = [r for r, _ in pairs]
        cols = [c for _, c in pairs]
        assert len(set(rows)) == len(rows) == 5
        assert len(set(cols)) == len(cols)
