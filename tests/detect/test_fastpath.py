"""Two-tier fast path: config resolution, differ units, byte identity.

The load-bearing guarantee is the ``exact`` policy: reuse happens only
on bit-equal pixels, so output must be byte-identical to the baseline
pipeline on every stream shape — cold caches, repeated frames, scene
cuts — on both compute backends and under every sharding mode.  The
``fast`` policy is approximate by design and is tested for its
*accounting* (carry/prune counters) and for recall on deterministic
synthetic scenes.
"""

import numpy as np
import pytest

from repro.detect.engine import DetectionEngine
from repro.detect.fastpath import (
    ENV_VAR,
    FastpathConfig,
    FastpathPolicy,
    dirty_window_mask,
    expand_tile_mask,
    resolve_fastpath,
    tile_reduce_any,
    tile_reduce_max,
)
from repro.detect.pipeline import FaceDetectionPipeline, PipelineConfig
from repro.errors import ConfigurationError
from repro.utils.rng import rng_for
from repro.video.synthesis import render_scene
from repro.zoo import quick_cascade


@pytest.fixture(scope="module")
def cascade():
    return quick_cascade(seed=0)


@pytest.fixture(scope="module")
def scenes():
    """Two distinct deterministic scenes at a small, fast size."""
    f1, _ = render_scene(128, 96, faces=1, rng=rng_for(3, "fastpath-test", 0))
    f2, _ = render_scene(128, 96, faces=1, rng=rng_for(3, "fastpath-test", 1))
    return f1, f2


def _detections(result):
    return [(d.x, d.y, d.size, d.score) for d in result.raw_detections]


def _assert_frame_identical(reference, candidate):
    assert _detections(reference) == _detections(candidate)
    assert reference.schedule.makespan_s == candidate.schedule.makespan_s
    for kr, kc in zip(reference.kernel_results, candidate.kernel_results):
        assert np.array_equal(kr.depth_map, kc.depth_map)
        assert np.array_equal(kr.margin_map, kc.margin_map)


class TestConfigResolution:
    def test_coerce_accepts_names_and_policies(self):
        assert FastpathPolicy.coerce("fast") is FastpathPolicy.FAST
        assert FastpathPolicy.coerce("EXACT") is FastpathPolicy.EXACT
        assert FastpathPolicy.coerce(FastpathPolicy.OFF) is FastpathPolicy.OFF

    def test_coerce_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown fastpath policy"):
            FastpathPolicy.coerce("turbo")

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        assert resolve_fastpath("exact").policy is FastpathPolicy.EXACT
        explicit = FastpathConfig(policy=FastpathPolicy.OFF)
        assert resolve_fastpath(explicit) is explicit

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "exact")
        assert resolve_fastpath(None).policy is FastpathPolicy.EXACT
        monkeypatch.delenv(ENV_VAR)
        assert resolve_fastpath(None).policy is FastpathPolicy.OFF

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FastpathConfig(tile=0)
        with pytest.raises(ConfigurationError):
            FastpathConfig(diff_eps=-1.0)
        with pytest.raises(ConfigurationError):
            FastpathConfig(dense_fallback=0.0)

    def test_pipeline_config_accepts_policy_string(self, cascade, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        pipeline = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="fast")
        )
        assert pipeline.fastpath.policy is FastpathPolicy.FAST
        off = FaceDetectionPipeline(cascade)
        assert off.fastpath.policy is FastpathPolicy.OFF


class TestGridHelpers:
    def test_dirty_window_mask_matches_brute_force(self):
        rng = np.random.default_rng(11)
        changed = rng.random((40, 56)) < 0.03
        window = 24
        ay, ax = 40 - window + 1, 56 - window + 1
        mask = dirty_window_mask(changed, window, ay, ax)
        for y in range(ay):
            for x in range(ax):
                expected = bool(changed[y : y + window, x : x + window].any())
                assert mask[y, x] == expected, (y, x)

    def test_motion_straddling_tile_boundaries_dirties_both_sides(self):
        # one changed pixel exactly on a 16-anchor tile boundary must
        # dirty every window whose footprint sees it — including the
        # windows on the *other* side of the boundary
        changed = np.zeros((64, 64), dtype=bool)
        changed[16, 16] = True
        window = 8
        ay = ax = 64 - window + 1
        mask = dirty_window_mask(changed, window, ay, ax)
        ys, xs = np.nonzero(mask)
        assert ys.min() == 16 - window + 1 and ys.max() == 16
        assert xs.min() == 16 - window + 1 and xs.max() == 16
        # windows straddle the tile edge on both sides of anchor 16
        tiles = tile_reduce_any(mask, 16)
        assert tiles[0, 0] and tiles[1, 1] and tiles[0, 1] and tiles[1, 0]

    def test_tile_reduce_and_expand_round_trip(self):
        values = np.arange(20.0 * 18).reshape(20, 18)
        tiles = tile_reduce_max(values, 16)
        assert tiles.shape == (2, 2)
        assert tiles[0, 0] == values[:16, :16].max()
        assert tiles[1, 1] == values[16:, 16:].max()
        keep = tiles >= tiles[1, 1]
        expanded = expand_tile_mask(keep, 16, 20, 18)
        assert expanded.shape == (20, 18)
        assert expanded[19, 17] and not expanded[0, 0]


class TestTemporalCache:
    def test_first_frame_is_fully_dirty(self, cascade, scenes):
        ws = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="exact")
        ).make_workspace()
        stats = ws.process_frame(scenes[0]).fastpath
        assert stats.frames_reused == 0
        assert stats.levels_reused == 0
        assert stats.anchors_carried == 0
        assert stats.anchors_evaluated == stats.anchors > 0

    def test_repeated_frame_reuses_everything(self, cascade, scenes):
        ws = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="exact")
        ).make_workspace()
        first = ws.process_frame(scenes[0])
        second = ws.process_frame(scenes[0])
        stats = second.fastpath
        assert stats.frames_reused == 1
        assert stats.anchors_evaluated == 0
        assert stats.anchors_carried == stats.anchors
        _assert_frame_identical(first, second)

    def test_scene_cut_invalidates_the_cache(self, cascade, scenes):
        baseline = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="off")
        )
        ws = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="exact")
        ).make_workspace()
        ws.process_frame(scenes[0])
        cut = ws.process_frame(scenes[1])
        assert cut.fastpath.frames_reused == 0
        _assert_frame_identical(baseline.process_frame(scenes[1]), cut)

    def test_fast_carries_clean_regions_forward(self, cascade, scenes):
        # a localised edit: only windows whose footprint sees the dirty
        # rectangle re-evaluate; everything else carries forward
        ws = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="fast")
        ).make_workspace()
        ws.process_frame(scenes[0])
        edited = np.array(scenes[0], copy=True)
        edited[40:48, 60:68] += 25.0
        stats = ws.process_frame(edited).fastpath
        assert stats.anchors_carried > 0
        assert 0 < stats.anchors_evaluated < stats.anchors
        assert (
            stats.anchors_evaluated + stats.anchors_carried + stats.anchors_pruned
            <= stats.anchors
        )

    def test_fast_equals_exact_on_a_static_stream(self, cascade, scenes):
        exact_ws = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="exact")
        ).make_workspace()
        fast_ws = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="fast")
        ).make_workspace()
        for frame in (scenes[0], scenes[0], scenes[0]):
            e = exact_ws.process_frame(frame)
            f = fast_ws.process_frame(frame)
            assert _detections(e) == _detections(f)

    def test_stream_none_disables_temporal_reuse(self, cascade, scenes):
        pipeline = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="exact")
        )
        ws = pipeline.make_workspace(stream=None)
        assert ws.stream is None
        for _ in range(2):
            stats = ws.process_frame(scenes[0]).fastpath
            assert stats.frames_reused == 0
            assert stats.anchors_carried == 0


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
class TestExactByteIdentity:
    def _frames(self, scenes):
        f1, f2 = scenes
        # repeats, a scene cut, and a return to a seen frame: every
        # cache path (cold, hit, invalidate, re-fill) is on this stream
        return [f1, f1, f2, f2, f2, f1]

    def test_serial_workspace(self, backend, cascade, scenes):
        baseline = FaceDetectionPipeline(
            cascade, config=PipelineConfig(backend=backend, fastpath="off")
        )
        ws = FaceDetectionPipeline(
            cascade, config=PipelineConfig(backend=backend, fastpath="exact")
        ).make_workspace()
        for frame in self._frames(scenes):
            _assert_frame_identical(
                baseline.process_frame(frame), ws.process_frame(frame)
            )

    def test_threaded_engine(self, backend, cascade, scenes):
        baseline = FaceDetectionPipeline(
            cascade, config=PipelineConfig(backend=backend, fastpath="off")
        )
        exact = FaceDetectionPipeline(
            cascade, config=PipelineConfig(backend=backend, fastpath="exact")
        )
        frames = self._frames(scenes)
        reference = [baseline.process_frame(f) for f in frames]
        with DetectionEngine(exact, workers=2, sharding="threads") as engine:
            results = list(engine.process_frames(iter(frames)))
        for r, c in zip(reference, results):
            assert _detections(r) == _detections(c)


class TestExactByteIdentityProcesses:
    def test_process_sharded_engine(self, cascade, scenes):
        """Each spawn worker owns its own delta cache; identity must
        survive frames of one stream interleaving across workers."""
        baseline = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="off")
        )
        exact = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="exact")
        )
        frames = [scenes[0], scenes[0], scenes[1], scenes[0]]
        reference = [baseline.process_frame(f) for f in frames]
        with DetectionEngine(exact, workers=2, sharding="processes") as engine:
            results = list(engine.process_frames(iter(frames)))
        for r, c in zip(reference, results):
            assert _detections(r) == _detections(c)


class TestEnginePlumbing:
    def test_engine_forwards_fastpath_stream(self, cascade, scenes, monkeypatch):
        pipeline = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="exact")
        )
        seen = []
        original = FaceDetectionPipeline.make_workspace

        def recording(self, tracer=None, stream="default"):
            seen.append(stream)
            return original(self, tracer=tracer, stream=stream)

        monkeypatch.setattr(FaceDetectionPipeline, "make_workspace", recording)
        with DetectionEngine(
            pipeline, workers=0, fastpath_stream=None
        ) as engine:
            list(engine.process_frames(iter([scenes[0]])))
        assert seen == [None]

    def test_results_carry_fastpath_stats_only_when_enabled(self, cascade, scenes):
        off = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="off")
        ).make_workspace()
        assert off.process_frame(scenes[0]).fastpath is None
        on = FaceDetectionPipeline(
            cascade, config=PipelineConfig(fastpath="fast")
        ).make_workspace()
        assert on.process_frame(scenes[0]).fastpath is not None
