"""Tests for the batched throughput engine.

The contract under test: the engine is a *pure reordering of work* — its
functional output is byte-identical to serial ``process_frame``, its
output order is the input order regardless of completion order, and its
memory footprint is bounded by the backpressure window.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.detect.engine import DetectionEngine, batch_report
from repro.detect.pipeline import FaceDetectionPipeline
from repro.errors import ConfigurationError
from repro.gpusim.scheduler import ExecutionMode
from repro.utils.rng import rng_for
from repro.video.stream import synthetic_stream
from repro.video.synthesis import render_scene
from repro.zoo import quick_cascade


@pytest.fixture(scope="module")
def pipeline():
    return FaceDetectionPipeline(quick_cascade(seed=0))


@pytest.fixture(scope="module")
def frames():
    return [
        render_scene(120, 90, faces=1, rng=rng_for(11, "engine-test", i))[0]
        for i in range(5)
    ]


def _detections(result):
    return [(d.x, d.y, d.size, d.score) for d in result.raw_detections]


class TestDeterminism:
    def test_batched_identical_to_serial(self, pipeline, frames):
        reference = [pipeline.process_frame(f) for f in frames]
        engine = DetectionEngine(pipeline, workers=2)
        # two passes: fresh workspaces, then reused ones
        for _ in range(2):
            batched = list(engine.process_frames(iter(frames)))
            assert len(batched) == len(reference)
            for ref, out in zip(reference, batched):
                assert _detections(out) == _detections(ref)
                assert out.schedule.makespan_s == ref.schedule.makespan_s
                for kr, ko in zip(ref.kernel_results, out.kernel_results):
                    assert np.array_equal(kr.depth_map, ko.depth_map)
                    assert np.array_equal(kr.margin_map, ko.margin_map)
                    assert np.array_equal(kr.sigma_map, ko.sigma_map)

    def test_vectorized_backend_identical_through_engine(self, pipeline, frames):
        from repro.detect.pipeline import PipelineConfig

        vec_pipeline = FaceDetectionPipeline(
            quick_cascade(seed=0), config=PipelineConfig(backend="vectorized")
        )
        assert vec_pipeline.backend.name == "vectorized"
        reference = [pipeline.process_frame(f) for f in frames]
        engine = DetectionEngine(vec_pipeline, workers=2)
        batched = list(engine.process_frames(iter(frames)))
        for ref, out in zip(reference, batched):
            assert _detections(out) == _detections(ref)
            for kr, ko in zip(ref.kernel_results, out.kernel_results):
                assert kr.depth_map.tobytes() == ko.depth_map.tobytes()
                assert kr.margin_map.tobytes() == ko.margin_map.tobytes()
                assert kr.score_map.tobytes() == ko.score_map.tobytes()

    def test_workspace_reuse_is_stateless(self, pipeline, frames):
        workspace = pipeline.make_workspace()
        first = workspace.process_frame(frames[0])
        workspace.process_frame(frames[1])  # different content in between
        again = workspace.process_frame(frames[0])
        assert _detections(again) == _detections(first)
        assert again.schedule.makespan_s == first.schedule.makespan_s

    def test_mode_override(self, pipeline, frames):
        engine = DetectionEngine(pipeline, workers=1)
        serial = list(engine.process_frames(frames[:2], mode=ExecutionMode.SERIAL))
        conc = list(engine.process_frames(frames[:2], mode=ExecutionMode.CONCURRENT))
        for s, c in zip(serial, conc):
            assert s.schedule.mode is ExecutionMode.SERIAL
            assert c.schedule.mode is ExecutionMode.CONCURRENT
            assert _detections(s) == _detections(c)

    def test_accepts_frame_packets(self, pipeline):
        packets = list(synthetic_stream(120, 90, 3, seed=5))
        engine = DetectionEngine(pipeline, workers=2)
        from_packets = list(engine.process_frames(iter(packets)))
        from_lumas = list(engine.process_frames(iter(p.luma for p in packets)))
        for a, b in zip(from_packets, from_lumas):
            assert _detections(a) == _detections(b)


class _ScrambledEngine(DetectionEngine):
    """Engine whose workers finish in deliberately inverted order."""

    def __init__(self, pipeline, **kwargs):
        super().__init__(pipeline, **kwargs)
        self.started = []
        self._lock2 = threading.Lock()

    def _process_one(self, workspace, luma, mode):
        index = int(luma[0, 0])
        with self._lock2:
            self.started.append(index)
        # earlier frames sleep longer, so completion order inverts
        time.sleep(0.05 * (4 - index) / 4)
        return index


class TestOrdering:
    def test_output_order_under_inverted_completion(self, pipeline):
        engine = _ScrambledEngine(pipeline, workers=4)
        frames = [np.full((48, 48), i, dtype=np.float32) for i in range(4)]
        out = list(engine.process_frames(iter(frames)))
        assert out == [0, 1, 2, 3]
        assert sorted(engine.started) == [0, 1, 2, 3]

    def test_backpressure_bounds_in_flight(self, pipeline):
        engine = _ScrambledEngine(pipeline, workers=2, queue_depth=1)
        pulled = []

        def source():
            for i in range(8):
                pulled.append(i)
                yield np.full((48, 48), i % 4, dtype=np.float32)

        results = engine.process_frames(source())
        first = next(results)
        assert first == 0
        # the source may only ever run max_in_flight ahead of consumption
        assert len(pulled) <= engine.max_in_flight + 1
        list(results)
        assert len(pulled) == 8

    def test_max_in_flight(self, pipeline):
        assert DetectionEngine(pipeline, workers=3, queue_depth=2).max_in_flight == 5
        assert DetectionEngine(pipeline, workers=0, queue_depth=2).max_in_flight == 3


class TestWorkerCounts:
    @pytest.mark.parametrize("workers", [0, 1, os.cpu_count() or 1])
    def test_all_worker_counts_agree(self, pipeline, frames, workers):
        reference = [pipeline.process_frame(f) for f in frames[:3]]
        engine = DetectionEngine(pipeline, workers=workers)
        out = list(engine.process_frames(iter(frames[:3])))
        for ref, got in zip(reference, out):
            assert _detections(got) == _detections(ref)

    def test_default_workers_is_cpu_count(self, pipeline):
        engine = DetectionEngine(pipeline)
        assert engine.workers == (os.cpu_count() or 1)

    def test_invalid_configuration_rejected(self, pipeline):
        with pytest.raises(ConfigurationError):
            DetectionEngine(pipeline, workers=-1)
        with pytest.raises(ConfigurationError):
            DetectionEngine(pipeline, queue_depth=-1)


class TestBatchReport:
    def test_run_aggregates(self, pipeline, frames):
        engine = DetectionEngine(pipeline, workers=2)
        run = engine.run(iter(frames[:3]))
        report = run.report
        assert report.frames == 3
        expected = sum(r.schedule.makespan_s for r in run.results)
        assert report.simulated_seconds == pytest.approx(expected)
        assert report.simulated_fps == pytest.approx(3 / expected)
        fractions = report.stage_fractions()
        assert set(fractions) >= {"integral", "cascade", "display"}
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_rejection_totals(self, pipeline, frames):
        engine = DetectionEngine(pipeline, workers=0)
        run = engine.run(iter(frames[:2]))
        n_stages = pipeline.cascade.num_stages
        expected = sum(
            r.rejection_matrix(n_stages).sum(axis=0) for r in run.results
        )
        assert np.array_equal(run.report.rejections_by_depth, expected)
        # almost everything dies in the first stages (Fig. 7 shape)
        total = run.report.rejections_by_depth.sum()
        assert run.report.rejections_by_depth[0] > 0.5 * total

    def test_wall_fps(self, pipeline, frames):
        results = [pipeline.process_frame(f) for f in frames[:2]]
        report = batch_report(results, wall_s=0.5)
        assert report.wall_fps == pytest.approx(4.0)
        assert batch_report(results).wall_fps is None

    def test_to_dict_round_trips_via_json(self, pipeline, frames):
        import json

        run = DetectionEngine(pipeline, workers=0).run(iter(frames[:2]))
        payload = json.loads(json.dumps(run.report.to_dict()))
        assert payload["frames"] == 2
        assert payload["simulated_fps"] > 0
        assert isinstance(payload["rejections_by_depth"], list)
