"""Pickle round-trips for everything that crosses the process boundary.

Process sharding ships objects through ``spawn`` workers: the
:class:`~repro.detect.pipeline.PipelineSpec` rides in the pool
initializer, :class:`~repro.video.shm.SlotTicket` and
:class:`~repro.detect.shard.ShardReply` cross per frame, and traced
runs ship :class:`~repro.obs.tracer.Span` lists back.  A single stored
lambda or open handle anywhere in those graphs turns into an opaque
``BrokenProcessPool`` at runtime — these tests pin the pickling
contract where the failure is legible instead.
"""

import pickle

import numpy as np
import pytest

from repro import zoo
from repro.detect.pipeline import FaceDetectionPipeline, PipelineConfig, PipelineSpec
from repro.detect.shard import ShardReply
from repro.obs.tracer import Span
from repro.video.shm import SlotTicket
from repro.video.stream import synthetic_stream


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_pipeline_config_roundtrip():
    config = PipelineConfig(backend="vectorized")
    restored = roundtrip(config)
    assert restored == config


def test_cascade_roundtrip():
    cascade = zoo.quick_cascade(seed=0)
    restored = roundtrip(cascade)
    assert restored.num_stages == cascade.num_stages
    assert restored.stage_sizes() == cascade.stage_sizes()
    assert restored.window == cascade.window


def test_frame_packet_roundtrip():
    packet = next(iter(synthetic_stream(64, 48, 1, faces=1, seed=3)))
    restored = roundtrip(packet)
    assert restored.index == packet.index
    np.testing.assert_array_equal(restored.luma, packet.luma)
    assert restored.annotations == packet.annotations


def test_slot_ticket_roundtrip():
    ticket = SlotTicket(
        ring_name="psm_test", slot=2, offset=4096, shape=(48, 64), dtype="uint8"
    )
    assert roundtrip(ticket) == ticket


def _span_fields(span):
    return (
        span.name, span.cat, span.start_us, span.dur_us,
        span.thread_id, span.thread_name, span.args,
    )


def test_span_roundtrip():
    span = Span(
        name="frame", cat="engine", start_us=500.0, dur_us=250.0,
        thread_id=1234, thread_name="pid 1234", args={"frame": 7},
    )
    restored = roundtrip(span)
    assert _span_fields(restored) == _span_fields(span)


def test_pipeline_spec_roundtrip_builds_identical_pipeline():
    """The initializer payload must rebuild a byte-identical pipeline."""
    pipeline = FaceDetectionPipeline(zoo.quick_cascade(seed=0))
    spec = roundtrip(pipeline.spec())
    rebuilt = spec.build()

    luma = next(iter(synthetic_stream(96, 72, 1, faces=1, seed=5))).luma
    original = pipeline.process_frame(luma)
    mirrored = rebuilt.process_frame(luma)
    assert [
        (d.x, d.y, d.size, d.score) for d in original.raw_detections
    ] == [(d.x, d.y, d.size, d.score) for d in mirrored.raw_detections]


def test_frame_result_roundtrip():
    pipeline = FaceDetectionPipeline(zoo.quick_cascade(seed=0))
    luma = next(iter(synthetic_stream(96, 72, 1, faces=1, seed=5))).luma
    result = pipeline.process_frame(luma)
    restored = roundtrip(result)
    assert [
        (d.x, d.y, d.size, d.score) for d in restored.raw_detections
    ] == [(d.x, d.y, d.size, d.score) for d in result.raw_detections]
    assert len(restored.levels) == len(result.levels)
    assert restored.detection_time_s == result.detection_time_s


def test_shard_reply_roundtrip():
    pipeline = FaceDetectionPipeline(zoo.quick_cascade(seed=0))
    luma = next(iter(synthetic_stream(96, 72, 1, faces=1, seed=5))).luma
    reply = ShardReply(
        index=3,
        result=pipeline.process_frame(luma),
        pid=4321,
        queue_wait_s=0.001,
        latency_s=0.25,
        spans=[
            Span(
                name="frame", cat="engine", start_us=0.0, dur_us=250.0,
                thread_id=4321, thread_name="pid 4321", args={"frame": 3},
            )
        ],
    )
    restored = roundtrip(reply)
    assert restored.index == reply.index
    assert restored.pid == reply.pid
    assert [_span_fields(s) for s in restored.spans] == [
        _span_fields(s) for s in reply.spans
    ]
    assert len(restored.result.raw_detections) == len(reply.result.raw_detections)


def test_pickled_payloads_are_small_except_pixels():
    """Per-frame control traffic stays tiny: the pixels ride in shm."""
    ticket = SlotTicket(
        ring_name="psm_test", slot=0, offset=0, shape=(270, 480), dtype="uint8"
    )
    assert len(pickle.dumps(ticket)) < 1024


@pytest.mark.parametrize("mode", ["threads", "processes", "auto"])
def test_sharding_mode_roundtrip(mode):
    from repro.detect.engine import ShardingMode

    value = ShardingMode.coerce(mode)
    assert roundtrip(value) is value
