"""Device-batch goldens: fused cross-frame execution vs per-frame truth.

The batch executor's contract is that ``batch_across_frames`` is purely
an execution strategy: the same frames must produce byte-identical
detections with batching on or off, on every sharding mode (serial,
threads, processes), through both ``process_frames`` and
``submit_batch``.  The ``vectorized`` backend is the identity surface;
the ``arrayapi`` backend (``exactness="tolerance"``) is held to the
detection-level IoU/score gate instead.  Unit tests pin the batch-plan
grouping, the launch-fusion helpers and the transfer accounting the
``BENCH_devicebatch.json`` columns are built from.
"""

import numpy as np
import pytest

from repro.backend.oracle import ToleranceSpec, _diff_detections
from repro.detect.devicebatch import (
    BatchPlan,
    TransferStats,
    concat_launches,
    fuse_uniform_launch,
)
from repro.detect.engine import DetectionEngine, batch_report
from repro.detect.pipeline import FaceDetectionPipeline, PipelineConfig
from repro.errors import ConfigurationError
from repro.image.filtering import filtering_launch
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import build_snapshot
from repro.utils.rng import rng_for
from repro.video.synthesis import render_scene
from repro.zoo import quick_cascade


@pytest.fixture(scope="module")
def cascade():
    return quick_cascade(seed=0)


@pytest.fixture(scope="module")
def pipeline(cascade):
    return FaceDetectionPipeline(
        # fastpath pinned off: fastpath workspaces are inherently
        # sequential (temporal delta cache) and opt out of fusion, so
        # these goldens must not inherit REPRO_FASTPATH from the env
        cascade, config=PipelineConfig(backend="vectorized", fastpath="off")
    )


@pytest.fixture(scope="module")
def frames():
    return [
        render_scene(96, 96, faces=1, rng=rng_for(11, "devicebatch-test", i))[0]
        for i in range(8)
    ]


@pytest.fixture(scope="module")
def reference(pipeline, frames):
    """Per-frame truth from the unbatched serial path."""
    workspace = pipeline.make_workspace()
    return [workspace.process_frame(f) for f in frames]


def _detections(result):
    return [(d.x, d.y, d.size, d.score) for d in result.raw_detections]


def _assert_identical(reference, candidate):
    assert len(reference) == len(candidate)
    for ref, got in zip(reference, candidate):
        assert _detections(ref) == _detections(got)


class TestBatchPlan:
    def test_groups_consecutive_same_shapes(self):
        shapes = [(96, 96)] * 5 + [(48, 48)] * 2 + [(96, 96)]
        plan = BatchPlan.plan(shapes, max_batch=8)
        assert [(g.start, g.count, g.shape) for g in plan.groups] == [
            (0, 5, (96, 96)),
            (5, 2, (48, 48)),
            (7, 1, (96, 96)),
        ]

    def test_caps_at_max_batch(self):
        plan = BatchPlan.plan([(64, 64)] * 10, max_batch=4)
        assert [g.count for g in plan.groups] == [4, 4, 2]
        assert [list(g.indices) for g in plan.groups] == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9]
        ]

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ConfigurationError):
            BatchPlan.plan([(64, 64)], max_batch=0)


class TestTransferStats:
    def test_saved_is_per_frame_minus_fused(self):
        stats = TransferStats(
            frames=4, batches=1, fused_batches=1,
            h2d=10, d2h=10, per_frame_h2d=40, per_frame_d2h=40,
        )
        assert stats.saved == 60
        assert stats.as_dict()["saved"] == 60

    def test_merge_accumulates(self):
        a = TransferStats(frames=2, batches=1, h2d=5, d2h=5,
                          per_frame_h2d=10, per_frame_d2h=10)
        b = TransferStats(frames=3, batches=1, fused_batches=1, h2d=5, d2h=5,
                          per_frame_h2d=15, per_frame_d2h=15)
        a.merge(b)
        assert (a.frames, a.batches, a.fused_batches) == (5, 2, 1)
        assert a.saved == (10 + 15) * 2 - 20


class TestLaunchFusion:
    def test_fuse_uniform_launch_tiles_by_n(self):
        base = filtering_launch(96, 96, stream=1, tag="filter")
        fused = fuse_uniform_launch(base, 4)
        assert fused.config.grid_blocks == base.config.grid_blocks * 4
        assert fused.work.warp_instructions.shape[0] == base.config.grid_blocks * 4
        assert np.array_equal(
            fused.work.warp_instructions[: base.config.grid_blocks],
            base.work.warp_instructions,
        )
        assert fused.stream == base.stream
        assert fused.tag == base.tag

    def test_fuse_n1_is_equivalent(self):
        base = filtering_launch(64, 64, stream=2)
        fused = fuse_uniform_launch(base, 1)
        assert fused.config.grid_blocks == base.config.grid_blocks
        assert np.array_equal(
            fused.work.warp_instructions, base.work.warp_instructions
        )

    def test_concat_launches(self):
        a = filtering_launch(96, 96, stream=1)
        b = filtering_launch(96, 96, stream=1)
        merged = concat_launches([a, b])
        assert merged.config.grid_blocks == a.config.grid_blocks * 2
        assert merged.work.warp_instructions.shape[0] == a.config.grid_blocks * 2
        assert concat_launches([a]) is a
        with pytest.raises(ConfigurationError):
            concat_launches([])


class TestIdentityVectorized:
    """Same frames, batching on vs off: byte-identical on every path."""

    def test_inline_serial(self, pipeline, frames, reference):
        with DetectionEngine(
            pipeline, workers=0, batch_across_frames=True, device_batch=4
        ) as engine:
            results = list(engine.process_frames(iter(frames)))
        _assert_identical(reference, results)
        assert all(r.device_batch == 4 for r in results)

    def test_threads(self, pipeline, frames, reference):
        with DetectionEngine(
            pipeline, workers=2, batch_across_frames=True, device_batch=4
        ) as engine:
            results = list(engine.process_frames(iter(frames)))
        _assert_identical(reference, results)

    def test_processes(self, pipeline, frames, reference):
        with DetectionEngine(
            pipeline,
            workers=2,
            sharding="processes",
            batch_across_frames=True,
            device_batch=4,
        ) as engine:
            results = list(engine.process_frames(iter(frames)))
        _assert_identical(reference, results)
        assert all(r.worker.startswith("pid ") for r in results)

    def test_submit_batch(self, pipeline, frames, reference):
        with DetectionEngine(
            pipeline, workers=2, batch_across_frames=True, device_batch=4
        ) as engine:
            futures = engine.submit_batch(frames)
            results = [f.result(timeout=60) for f in futures]
        _assert_identical(reference, results)

    def test_submit_batch_degrades_without_batch_mode(
        self, pipeline, frames, reference
    ):
        with DetectionEngine(pipeline, workers=0) as engine:
            futures = engine.submit_batch(frames[:3])
            results = [f.result(timeout=60) for f in futures]
        _assert_identical(reference[:3], results)
        assert all(r.device_batch is None for r in results)

    def test_mixed_shapes_split_groups(self, pipeline):
        frames = []
        for i in range(6):
            side = 96 if i % 2 == 0 else 64
            frames.append(
                render_scene(side, side, faces=1, rng=rng_for(3, "db-mixed", i))[0]
            )
        workspace = pipeline.make_workspace()
        reference = [workspace.process_frame(f) for f in frames]
        with DetectionEngine(
            pipeline, workers=0, batch_across_frames=True, device_batch=4
        ) as engine:
            results = list(engine.process_frames(iter(frames)))
        _assert_identical(reference, results)
        # alternating shapes break every run: no group exceeds one frame,
        # so every frame takes the per-frame fallback and nothing fuses —
        # correctness must not depend on fusion firing
        assert all(r.device_batch is None for r in results)


class TestAccounting:
    def test_batch_report_counts_shared_schedules_once(self, pipeline, frames):
        with DetectionEngine(
            pipeline, workers=0, batch_across_frames=True, device_batch=4
        ) as engine:
            results = list(engine.process_frames(iter(frames)))
        report = batch_report(results)
        # 8 frames in device batches of 4 -> 2 distinct fused schedules,
        # each aggregated once (BatchReport.frames counts aggregated
        # schedules, one per fused batch here — not once per frame)
        assert report.frames == 2
        assert report.simulated_seconds > 0

    def test_metrics_batching_block(self, pipeline, frames):
        registry = MetricsRegistry()
        with DetectionEngine(
            pipeline,
            workers=0,
            metrics=registry,
            batch_across_frames=True,
            device_batch=4,
        ) as engine:
            list(engine.process_frames(iter(frames)))
        snap = build_snapshot(registry)
        batching = snap["batching"]
        assert batching["batched_frames"] == len(frames)
        assert batching["device_batches"] == 2
        assert batching["fused_batches"] == 2
        assert batching["mean_batch_size"] == 4.0
        assert batching["batch_size_max"] == 4
        # accounting identity: fused crossings + saved == per-frame crossings
        counters = snap["counters"]
        transfers = counters["engine.device_transfers"]
        saved = counters["engine.device_transfers_saved"]
        assert saved > 0
        registry2 = MetricsRegistry()
        with DetectionEngine(
            pipeline,
            workers=0,
            metrics=registry2,
            batch_across_frames=True,
            device_batch=1,
        ) as engine:
            list(engine.process_frames(iter(frames)))
        unfused = registry2.snapshot()["counters"]["engine.device_transfers"]
        assert transfers + saved == unfused


class TestArrayApiTolerance:
    def test_batched_arrayapi_within_detection_gate(self, cascade, frames):
        """The tolerance-backend golden: batched arrayapi detections must
        match its own per-frame output under the PR 8 detection gate
        (IoU + score delta) — the acceptance contract a non-bit-exact
        accelerator backend is held to."""
        pipeline = FaceDetectionPipeline(
            cascade, config=PipelineConfig(backend="arrayapi", fastpath="off")
        )
        workspace = pipeline.make_workspace()
        per_frame = [workspace.process_frame(f) for f in frames]
        with DetectionEngine(
            pipeline, workers=0, batch_across_frames=True, device_batch=4
        ) as engine:
            batched = list(engine.process_frames(iter(frames)))
        spec = ToleranceSpec()
        mismatches: list[str] = []
        for i, (ref, got) in enumerate(zip(per_frame, batched)):
            _diff_detections(
                mismatches,
                f"frame {i}",
                _detections(ref),
                _detections(got),
                spec,
            )
        assert not mismatches, "\n".join(mismatches[:10])
