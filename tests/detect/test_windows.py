"""Tests for the Eq. 1-4 block/window decomposition."""

import pytest

from repro.detect.windows import BlockMapping, staging_addresses
from repro.errors import ConfigurationError


class TestStagingAddresses:
    def test_four_transfers(self):
        assert len(staging_addresses(0, 0, 0, 0, 16, 16)) == 4

    def test_equations_exact(self):
        # Eq. 1-4 with alpha = i*n + x, beta = j*m + y
        n, m = 16, 16
        x, y, i, j = 3, 5, 2, 1
        alpha, beta = i * n + x, j * m + y
        transfers = staging_addresses(x, y, i, j, n, m)
        assert transfers[0] == ((x, y), (alpha, beta))
        assert transfers[1] == ((x + n, y), (alpha + n, beta))
        assert transfers[2] == ((x, y + m), (alpha, beta + m))
        assert transfers[3] == ((x + n, y + m), (alpha + n, beta + m))

    def test_block_covers_2n_x_2m_tile(self):
        # The union of all threads' shared-memory targets tiles 2n x 2m.
        n = m = 4
        covered = set()
        for x in range(n):
            for y in range(m):
                for shared, _ in staging_addresses(x, y, 0, 0, n, m):
                    covered.add(shared)
        assert covered == {(a, b) for a in range(2 * n) for b in range(2 * m)}

    def test_neighbouring_blocks_share_three_quarters(self):
        # "3 of them will be of memory regions meant to be explored by
        # contiguous blocks": the extra 3 quadrants belong to blocks
        # (i+1, j), (i, j+1), (i+1, j+1).
        n = m = 8
        own = {
            coords
            for x in range(n)
            for y in range(m)
            for _, coords in staging_addresses(x, y, 0, 0, n, m)
        }
        next_block_origin = {coords for _, coords in staging_addresses(0, 0, 1, 0, n, m)}
        assert (n, 0) in {c for c in own}  # block (1,0)'s origin staged by block (0,0)
        assert next_block_origin & own

    def test_rejects_thread_outside_block(self):
        with pytest.raises(ConfigurationError):
            staging_addresses(16, 0, 0, 0, 16, 16)


class TestBlockMapping:
    def test_anchor_counts(self):
        m = BlockMapping(level_width=100, level_height=60)
        assert m.anchors_x == 77
        assert m.anchors_y == 37

    def test_grid_covers_all_anchors(self):
        m = BlockMapping(level_width=100, level_height=60)
        assert m.blocks_x * m.block_w >= m.anchors_x
        assert m.blocks_y * m.block_h >= m.anchors_y

    def test_grid_blocks(self):
        m = BlockMapping(level_width=100, level_height=60)
        assert m.grid_blocks == m.blocks_x * m.blocks_y == 5 * 3

    def test_threads_per_block(self):
        assert BlockMapping(100, 60).threads_per_block == 256

    def test_shared_tile_accounts_window_halo(self):
        m = BlockMapping(100, 60)
        assert m.shared_tile_bytes == (16 + 24) * (16 + 24) * 4

    def test_staging_loads_at_least_four(self):
        # the paper's "4 pixels per thread": 40x40 tile / 256 threads -> 7
        m = BlockMapping(100, 60)
        assert m.staging_loads_per_thread >= 4

    def test_block_anchor_boxes_partition(self):
        m = BlockMapping(level_width=64, level_height=50, block_w=16, block_h=16)
        seen = set()
        for by in range(m.blocks_y):
            for bx in range(m.blocks_x):
                x0, y0, x1, y1 = m.block_anchor_box(bx, by)
                for y in range(y0, y1):
                    for x in range(x0, x1):
                        assert (x, y) not in seen
                        seen.add((x, y))
        assert len(seen) == m.anchors_x * m.anchors_y

    def test_edge_blocks_clamped(self):
        m = BlockMapping(level_width=50, level_height=50)
        x0, y0, x1, y1 = m.block_anchor_box(m.blocks_x - 1, m.blocks_y - 1)
        assert x1 == m.anchors_x and y1 == m.anchors_y

    def test_rejects_small_level(self):
        with pytest.raises(ConfigurationError):
            BlockMapping(level_width=20, level_height=100)

    def test_rejects_bad_block_index(self):
        with pytest.raises(ConfigurationError):
            BlockMapping(100, 60).block_anchor_box(99, 0)
