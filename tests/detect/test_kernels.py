"""Tests for the cascade evaluation kernel (functional + cost layers)."""

import numpy as np
import pytest

from repro.boosting.cascade_trainer import evaluate_cascade_on_windows
from repro.detect.kernels import cascade_eval_kernel, stage_instruction_costs
from repro.detect.windows import BlockMapping
from repro.errors import ConfigurationError
from repro.haar.cascade import Cascade, Stage, WeakClassifier
from repro.haar.enumeration import subsampled_feature_pool
from repro.utils.rng import rng_for


def toy_cascade(stage_sizes=(2, 3), thresholds=None, seed=0, stage_threshold=-10.0):
    """A permissive cascade (accepts everything unless thresholds given)."""
    rng = rng_for(seed, "toy-cascade")
    pool = subsampled_feature_pool(sum(stage_sizes) + 5, seed=seed)
    stages = []
    k = 0
    for i, size in enumerate(stage_sizes):
        cls = []
        for _ in range(size):
            cls.append(
                WeakClassifier(
                    feature=pool[k],
                    threshold=float(rng.normal(0, 5)),
                    left=float(rng.uniform(-1, 1)),
                    right=float(rng.uniform(-1, 1)),
                )
            )
            k += 1
        thr = stage_threshold if thresholds is None else thresholds[i]
        stages.append(Stage(classifiers=tuple(cls), threshold=thr))
    return Cascade(stages=tuple(stages), name="toy")


@pytest.fixture(scope="module")
def image():
    rng = rng_for(3, "kernel-image")
    return rng.uniform(0, 255, (48, 64))


class TestFunctionalLayer:
    def test_depth_map_shape(self, image):
        result = cascade_eval_kernel(image, toy_cascade(), stream=1)
        assert result.depth_map.shape == (48 - 23, 64 - 23)

    def test_permissive_cascade_accepts_all(self, image):
        cascade = toy_cascade(stage_threshold=-100.0)
        result = cascade_eval_kernel(image, cascade, stream=1)
        assert np.all(result.depth_map == cascade.num_stages)
        ys, xs = result.accepted
        assert len(ys) == result.depth_map.size

    def test_impossible_cascade_rejects_all(self, image):
        cascade = toy_cascade(stage_threshold=+100.0)
        result = cascade_eval_kernel(image, cascade, stream=1)
        assert np.all(result.depth_map == 0)
        assert result.accepted[0].size == 0

    def test_matches_window_reference(self, image):
        # The kernel's per-anchor depth must equal evaluating the cascade on
        # the extracted 24x24 window directly (the training-side oracle).
        cascade = toy_cascade(stage_sizes=(3, 4), stage_threshold=0.35)
        result = cascade_eval_kernel(image, cascade, stream=1)
        rng = np.random.default_rng(0)
        for _ in range(12):
            y = int(rng.integers(0, 48 - 23))
            x = int(rng.integers(0, 64 - 23))
            window = image[y : y + 24, x : x + 24]
            depth, _ = evaluate_cascade_on_windows(cascade, window[None])
            assert result.depth_map[y, x] == depth[0]

    def test_dense_and_sparse_paths_agree(self, image):
        # A selective stage-1 pushes later stages onto the sparse path;
        # force the dense path by monkeypatching the threshold constant.
        import repro.backend.reference as R

        cascade = toy_cascade(stage_sizes=(3, 3, 3), stage_threshold=0.3)
        sparse = cascade_eval_kernel(image, cascade, stream=1)
        old = R.SPARSE_THRESHOLD
        try:
            R.SPARSE_THRESHOLD = -1.0  # never switch to sparse
            dense = cascade_eval_kernel(image, cascade, stream=1)
        finally:
            R.SPARSE_THRESHOLD = old
        np.testing.assert_array_equal(sparse.depth_map, dense.depth_map)

    def test_rejections_histogram_sums_to_anchors(self, image):
        cascade = toy_cascade(stage_threshold=0.2)
        result = cascade_eval_kernel(image, cascade, stream=1)
        assert result.rejections_by_depth.sum() == result.depth_map.size

    def test_sigma_map_positive(self, image):
        result = cascade_eval_kernel(image, toy_cascade(), stream=1)
        assert np.all(result.sigma_map >= 1.0)

    def test_score_map_monotone_in_depth(self, image):
        cascade = toy_cascade(stage_sizes=(2, 2), stage_threshold=0.3)
        result = cascade_eval_kernel(image, cascade, stream=1)
        deep = result.depth_map == cascade.num_stages
        shallow = result.depth_map == 0
        if deep.any() and shallow.any():
            assert result.score_map[deep].min() > result.score_map[shallow].max()

    def test_rejects_1d_image(self):
        with pytest.raises(ConfigurationError):
            cascade_eval_kernel(np.zeros(100), toy_cascade(), stream=0)


class TestCostLayer:
    def test_stage_instruction_costs_scale_with_size(self):
        small = toy_cascade(stage_sizes=(2,))
        large = toy_cascade(stage_sizes=(20,))
        assert stage_instruction_costs(large)[0] > stage_instruction_costs(small)[0] * 5

    def test_launch_geometry(self, image):
        result = cascade_eval_kernel(image, toy_cascade(), stream=4)
        mapping = BlockMapping(64, 48)
        assert result.launch.config.grid_blocks == mapping.grid_blocks
        assert result.launch.stream == 4
        assert result.launch.tag == "cascade"

    def test_deeper_evaluation_costs_more(self, image):
        accept_all = cascade_eval_kernel(image, toy_cascade(stage_threshold=-100.0), stream=1)
        reject_all = cascade_eval_kernel(image, toy_cascade(stage_threshold=+100.0), stream=1)
        assert (
            accept_all.launch.work.warp_instructions.sum()
            > reject_all.launch.work.warp_instructions.sum() * 1.5
        )

    def test_uniform_outcome_has_no_divergence(self, image):
        result = cascade_eval_kernel(image, toy_cascade(stage_threshold=-100.0), stream=1)
        assert result.launch.work.divergent_branches.sum() == 0

    def test_branch_counts_positive(self, image):
        result = cascade_eval_kernel(image, toy_cascade(), stream=1)
        assert np.all(result.launch.work.branches > 0)

    def test_work_arrays_validate(self, image):
        from repro.gpusim.device import GTX470

        result = cascade_eval_kernel(image, toy_cascade(), stream=1)
        result.launch.validate(GTX470)  # should not raise

    def test_divergent_never_exceeds_branches(self, image):
        cascade = toy_cascade(stage_sizes=(3, 4, 5), stage_threshold=0.3)
        result = cascade_eval_kernel(image, cascade, stream=1)
        assert np.all(
            result.launch.work.divergent_branches <= result.launch.work.branches
        )
