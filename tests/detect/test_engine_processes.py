"""Process-sharding tests: real worker processes, real shared memory.

Everything the threaded engine guarantees must survive the jump across
the process boundary: byte-identical output, input-order emission under
scrambled completion (injected per-frame delays), bounded in-flight
window, and a *loud* failure — :class:`~repro.errors.WorkerCrashError`,
never a hang — when a worker dies mid-batch.

Fault injection rides on the ``REPRO_ENGINE_TEST_*`` environment
variables (inherited by spawn workers), so the faults happen inside
genuine pool processes, not monkeypatched stand-ins.
"""

import os

import numpy as np
import pytest

from repro.detect.engine import DetectionEngine, ShardingMode
from repro.detect.pipeline import FaceDetectionPipeline
from repro.detect.shard import CRASH_INDEX_ENV, DELAY_ENV
from repro.errors import ConfigurationError, WorkerCrashError
from repro.utils.rng import rng_for
from repro.video.stream import synthetic_stream
from repro.video.synthesis import render_scene
from repro.zoo import quick_cascade


@pytest.fixture(scope="module")
def pipeline():
    return FaceDetectionPipeline(quick_cascade(seed=0))


@pytest.fixture(scope="module")
def frames():
    return [
        render_scene(96, 72, faces=1, rng=rng_for(13, "proc-engine-test", i))[0]
        for i in range(5)
    ]


@pytest.fixture(scope="module")
def engine(pipeline):
    """One persistent process-sharded engine shared by the module.

    Spawn startup costs ~1s per worker; sharing the pool across tests
    also exercises the persistence claim (state survives between runs).
    """
    with DetectionEngine(pipeline, workers=2, sharding="processes") as engine:
        yield engine


def _detections(result):
    return [(d.x, d.y, d.size, d.score) for d in result.raw_detections]


class TestIdentity:
    def test_byte_identical_to_serial(self, pipeline, frames, engine):
        reference = [pipeline.process_frame(f) for f in frames]
        # two passes: cold pool+ring, then warm (persistent workers)
        for _ in range(2):
            sharded = list(engine.process_frames(iter(frames)))
            assert len(sharded) == len(reference)
            for ref, out in zip(reference, sharded):
                assert _detections(out) == _detections(ref)
                assert out.schedule.makespan_s == ref.schedule.makespan_s
                for kr, ko in zip(ref.kernel_results, out.kernel_results):
                    assert kr.depth_map.tobytes() == ko.depth_map.tobytes()
                    assert kr.margin_map.tobytes() == ko.margin_map.tobytes()
                    assert kr.sigma_map.tobytes() == ko.sigma_map.tobytes()

    def test_accepts_frame_packets(self, pipeline, engine):
        packets = list(synthetic_stream(96, 72, 3, seed=5))
        reference = [pipeline.process_frame(p.luma) for p in packets]
        out = list(engine.process_frames(iter(packets)))
        for ref, got in zip(reference, out):
            assert _detections(got) == _detections(ref)


class TestOrdering:
    def test_ordered_output_under_scrambled_completion(
        self, pipeline, frames, monkeypatch
    ):
        # frame 0 sleeps longest inside its worker, so completion order
        # inverts; emission order must not
        monkeypatch.setenv(DELAY_ENV, "0:0.30,1:0.15,2:0.05")
        with DetectionEngine(pipeline, workers=2, sharding="processes") as engine:
            reference = [pipeline.process_frame(f) for f in frames[:4]]
            out = list(engine.process_frames(iter(frames[:4])))
        assert [_detections(r) for r in out] == [_detections(r) for r in reference]

    def test_backpressure_bounds_source_readahead(self, pipeline, frames, engine):
        pulled = []

        def source():
            for i in range(8):
                pulled.append(i)
                yield frames[i % len(frames)]

        results = engine.process_frames(source())
        next(results)
        # the source may only ever run max_in_flight ahead of consumption
        assert len(pulled) <= engine.max_in_flight + 1
        assert len(list(results)) == 7
        assert len(pulled) == 8

    def test_ring_occupancy_never_exceeds_bound(self, pipeline, frames, engine):
        # drain fully, then the ring must be back to all-free: every slot
        # acquired at submit was released at emit
        list(engine.process_frames(iter(frames)))
        ring = engine._ring
        assert ring is not None
        assert ring.free_slots == ring.slots
        assert ring.slots == engine.max_in_flight


class TestCrashSurfacing:
    def test_worker_crash_raises_not_hangs(self, pipeline, frames, monkeypatch):
        monkeypatch.setenv(CRASH_INDEX_ENV, "2")
        with DetectionEngine(pipeline, workers=2, sharding="processes") as engine:
            with pytest.raises(WorkerCrashError, match="worker process died"):
                list(engine.process_frames(iter(frames)))

            # the engine recovers: next run lazily rebuilds pool + ring
            monkeypatch.delenv(CRASH_INDEX_ENV)
            reference = [pipeline.process_frame(f) for f in frames[:2]]
            out = list(engine.process_frames(iter(frames[:2])))
            assert [_detections(r) for r in out] == [
                _detections(r) for r in reference
            ]

    def test_crash_error_is_configuration_free(self, pipeline, frames, monkeypatch):
        # a crash on the very first frame (initializer ran, frame 0 dies)
        monkeypatch.setenv(CRASH_INDEX_ENV, "0")
        with DetectionEngine(pipeline, workers=1, sharding="processes") as engine:
            with pytest.raises(WorkerCrashError):
                list(engine.process_frames(iter(frames[:2])))


class TestModeSelection:
    def test_auto_resolution_follows_cores(self, pipeline):
        resolved = ShardingMode.AUTO.resolve(4)
        if (os.cpu_count() or 1) >= 2:
            assert resolved is ShardingMode.PROCESSES
        else:
            assert resolved is ShardingMode.THREADS
        # zero/one worker never pays process overhead
        assert ShardingMode.AUTO.resolve(0) is ShardingMode.THREADS
        assert ShardingMode.AUTO.resolve(1) is ShardingMode.THREADS

    def test_coerce(self):
        assert ShardingMode.coerce("processes") is ShardingMode.PROCESSES
        assert ShardingMode.coerce("THREADS") is ShardingMode.THREADS
        assert ShardingMode.coerce(ShardingMode.AUTO) is ShardingMode.AUTO
        with pytest.raises(ConfigurationError, match="sharding"):
            ShardingMode.coerce("fork-bomb")

    def test_engine_exposes_requested_and_resolved(self, pipeline):
        engine = DetectionEngine(pipeline, workers=4, sharding="auto")
        assert engine.requested_sharding is ShardingMode.AUTO
        assert engine.sharding in (ShardingMode.THREADS, ShardingMode.PROCESSES)

    def test_unknown_start_method_rejected(self, pipeline):
        with pytest.raises(ConfigurationError, match="start method"):
            DetectionEngine(
                pipeline, workers=2, sharding="processes", start_method="teleport"
            )

    def test_workers_zero_stays_inline(self, pipeline, frames):
        # sharding=processes with workers=0 degrades to the inline path
        engine = DetectionEngine(pipeline, workers=0, sharding="processes")
        reference = pipeline.process_frame(frames[0])
        (out,) = list(engine.process_frames(iter(frames[:1])))
        assert _detections(out) == _detections(reference)


class TestObservability:
    def test_traced_run_merges_worker_spans_and_metrics(self, pipeline, frames):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        registry = MetricsRegistry()
        with DetectionEngine(
            pipeline, workers=2, sharding="processes",
            tracer=tracer, metrics=registry,
        ) as engine:
            reference = [pipeline.process_frame(f) for f in frames[:4]]
            out = list(engine.process_frames(iter(frames[:4])))
        # tracing must not change a single output byte
        assert [_detections(r) for r in out] == [_detections(r) for r in reference]

        spans = tracer.spans()
        names = {s.name for s in spans}
        assert {"frame", "integral", "cascade"} <= names
        # worker spans come back pid-tagged: one Chrome lane per process
        lanes = {s.thread_name for s in spans if s.name == "frame"}
        assert lanes and all(lane.startswith("pid ") for lane in lanes)
        frame_args = sorted(
            s.args["frame"] for s in spans if s.name == "frame"
        )
        assert frame_args == [0, 1, 2, 3]

        assert registry.counter("engine.frames").value == 4
        assert registry.histogram("engine.frame_latency_s").count == 4
        assert registry.histogram("engine.queue_wait_s").count == 4

    def test_chrome_trace_exports_pid_lanes(self, pipeline, frames):
        from repro.obs.chrome import engine_trace_events
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        with DetectionEngine(
            pipeline, workers=2, sharding="processes", tracer=tracer
        ) as engine:
            results = list(engine.process_frames(iter(frames[:3])))
        events = engine_trace_events(tracer, results)
        assert events
        tids = {
            e["tid"] for e in events if e.get("ph") == "X" and e.get("cat") == "engine"
        }
        assert tids  # at least one worker-pid lane made it to the export


class TestSubmitAcrossProcesses:
    def test_submit_matches_serial(self, pipeline, frames, engine):
        reference = [pipeline.process_frame(f) for f in frames]
        futures = [engine.submit(f) for f in frames]
        engine.drain()
        for ref, future in zip(reference, futures):
            assert future.done()
            assert _detections(future.result()) == _detections(ref)

    def test_submit_overflow_falls_back_to_pickle(self, pipeline, frames, engine):
        # more outstanding submissions than ring slots: the extras ship
        # inline rather than raising, and every result is still correct
        reference = _detections(pipeline.process_frame(frames[0]))
        futures = [engine.submit(frames[0]) for _ in range(engine.max_in_flight + 3)]
        engine.drain()
        assert all(_detections(f.result()) == reference for f in futures)
