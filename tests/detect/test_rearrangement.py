"""Tests for the thread-rearrangement strategy model (Herout et al.)."""

import numpy as np
import pytest

from repro.detect.kernels import cascade_eval_kernel
from repro.detect.rearrangement import default_stage_batches, rearrangement_launches
from repro.errors import ConfigurationError
from repro.gpusim.device import GTX470
from repro.utils.rng import rng_for
from repro.video.synthesis import render_scene
from repro.zoo import quick_cascade


@pytest.fixture(scope="module")
def workload():
    cascade = quick_cascade(seed=0)
    frame, _ = render_scene(200, 150, faces=1, rng=rng_for(0, "rearr"), min_face=40)
    result = cascade_eval_kernel(frame, cascade, stream=1)
    return cascade, result


class TestStageBatches:
    def test_covers_all_stages_once(self):
        batches = default_stage_batches(12)
        flat = [s for b in batches for s in b]
        assert flat == list(range(12))

    def test_geometric_growth(self):
        batches = default_stage_batches(25)
        sizes = [len(b) for b in batches]
        assert sizes[0] == 1
        assert max(sizes) <= 8
        # non-decreasing apart from the final remainder batch
        assert sizes[:-1] == sorted(sizes[:-1])

    def test_single_stage(self):
        assert default_stage_batches(1) == [[0]]

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            default_stage_batches(0)


class TestRearrangementLaunches:
    def test_launch_sequence_structure(self, workload):
        cascade, result = workload
        launches = rearrangement_launches(cascade, result, stream=2)
        tags = {l.tag for l in launches}
        assert "cascade" in tags
        assert "compaction" in tags
        assert all(l.stream == 2 for l in launches)

    def test_relaunch_grids_shrink_with_survivors(self, workload):
        cascade, result = workload
        launches = [
            l for l in rearrangement_launches(cascade, result, stream=1)
            if l.tag == "cascade"
        ]
        grids = [l.config.grid_blocks for l in launches]
        assert grids == sorted(grids, reverse=True)
        assert grids[0] > grids[-1]

    def test_launches_validate_on_device(self, workload):
        cascade, result = workload
        for launch in rearrangement_launches(cascade, result, stream=1):
            launch.validate(GTX470)

    def test_near_zero_divergence(self, workload):
        cascade, result = workload
        launches = rearrangement_launches(cascade, result, stream=1)
        for l in launches:
            if l.tag == "cascade":
                assert l.work.divergent_branches.sum() < 0.01 * l.work.branches.sum()

    def test_all_rejected_degenerate(self, workload):
        import copy

        cascade, result = workload
        # a depth map where nothing survives stage 0 (copy: fixture shared)
        fake = copy.copy(result)
        fake.depth_map = np.zeros_like(result.depth_map)
        launches = rearrangement_launches(cascade, fake, stream=1)
        # still one batch over all anchors (stage 0 must run for everything)
        cascades = [l for l in launches if l.tag == "cascade"]
        assert len(cascades) == 1
