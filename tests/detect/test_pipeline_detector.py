"""End-to-end tests for the pipeline and the FaceDetector API.

These use the cached ``quick`` cascade (trained on first run) and small
synthetic scenes, asserting the paper's *behavioural* properties: planted
faces found, serial/concurrent functional equivalence, concurrency speedup,
attentional rejection, and constant-memory enforcement.
"""

import numpy as np
import pytest

from repro import Detection, FaceDetector
from repro.detect.pipeline import FaceDetectionPipeline, PipelineConfig
from repro.errors import ConfigurationError
from repro.gpusim.scheduler import ExecutionMode
from repro.image.pyramid import PyramidConfig
from repro.utils.rng import rng_for
from repro.video.h264 import encode_video
from repro.video.synthesis import render_scene
from repro.video.trailer import synthesize_trailer
from repro.zoo import quick_cascade


@pytest.fixture(scope="module")
def cascade():
    return quick_cascade(seed=0)


@pytest.fixture(scope="module")
def detector(cascade):
    return FaceDetector(cascade)


@pytest.fixture(scope="module")
def scene():
    return render_scene(
        320, 240, faces=2, rng=rng_for(42, "pipeline-scene"), min_face=30, max_face=70
    )


class TestPipeline:
    def test_levels_match_pyramid(self, cascade, scene):
        pipe = FaceDetectionPipeline(cascade)
        result = pipe.process_frame(scene[0])
        assert len(result.levels) == len(result.kernel_results)
        assert result.levels[0].scale == 1.0

    def test_detection_time_positive(self, cascade, scene):
        result = FaceDetectionPipeline(cascade).process_frame(scene[0])
        assert result.detection_time_s > 0

    def test_serial_and_concurrent_same_functional_output(self, cascade, scene):
        pipe = FaceDetectionPipeline(cascade)
        ser = pipe.process_frame(scene[0], mode=ExecutionMode.SERIAL)
        con = pipe.process_frame(scene[0], mode=ExecutionMode.CONCURRENT)
        assert len(ser.raw_detections) == len(con.raw_detections)
        for a, b in zip(ser.raw_detections, con.raw_detections):
            assert a == b
        for ka, kb in zip(ser.kernel_results, con.kernel_results):
            np.testing.assert_array_equal(ka.depth_map, kb.depth_map)

    def test_concurrent_faster_than_serial(self, cascade, scene):
        pipe = FaceDetectionPipeline(cascade)
        ser = pipe.process_frame(scene[0], mode=ExecutionMode.SERIAL)
        con = pipe.process_frame(scene[0], mode=ExecutionMode.CONCURRENT)
        assert con.detection_time_s < ser.detection_time_s

    def test_stage_busy_seconds_tags(self, cascade, scene):
        result = FaceDetectionPipeline(cascade).process_frame(scene[0])
        busy = result.stage_busy_seconds()
        assert {"cascade", "integral", "display"} <= set(busy)
        assert busy["cascade"] > 0

    def test_cascade_dominates_pipeline_time(self, cascade, scene):
        # Section VI-A: integral kernels are ~20 % of frame time, the
        # cascade evaluation dominates.
        busy = FaceDetectionPipeline(cascade).process_frame(scene[0]).stage_busy_seconds()
        assert busy["cascade"] > busy["integral"]

    def test_rejection_matrix_shape(self, cascade, scene):
        pipe = FaceDetectionPipeline(cascade)
        result = pipe.process_frame(scene[0])
        matrix = result.rejection_matrix(pipe.cascade.num_stages)
        assert matrix.shape == (len(result.levels), pipe.cascade.num_stages + 1)

    def test_most_windows_rejected_at_first_stage(self, cascade, scene):
        # The attentional property behind Fig. 7.
        pipe = FaceDetectionPipeline(cascade)
        result = pipe.process_frame(scene[0])
        matrix = result.rejection_matrix(pipe.cascade.num_stages)
        total = matrix.sum()
        assert matrix[:, 0].sum() / total > 0.7

    def test_quantised_cascade_exposed(self, cascade):
        pipe = FaceDetectionPipeline(cascade)
        assert pipe.cascade.num_weak_classifiers == cascade.num_weak_classifiers
        assert pipe.constant_memory.used > 0

    def test_custom_pyramid_config(self, cascade, scene):
        config = PipelineConfig(pyramid=PyramidConfig(scale_factor=1.5))
        result = FaceDetectionPipeline(cascade, config=config).process_frame(scene[0])
        default = FaceDetectionPipeline(cascade).process_frame(scene[0])
        assert len(result.levels) < len(default.levels)


class TestFaceDetector:
    def test_finds_planted_faces(self, detector):
        found = 0
        total = 0
        for s in range(6):
            frame, truth = render_scene(
                320, 240, faces=2, rng=rng_for(100 + s, "demo"), min_face=28, max_face=80
            )
            result = detector.detect(frame)
            total += len(truth)
            for t in truth:
                cx, cy = t.center
                if any(
                    abs(d.center[0] - cx) < t.size * 0.35
                    and abs(d.center[1] - cy) < t.size * 0.35
                    and 0.55 < d.size / t.size < 1.8
                    for d in result.detections
                ):
                    found += 1
        assert found / total >= 0.6

    def test_no_detections_on_flat_image(self, detector):
        result = detector.detect(np.full((120, 160), 128.0))
        assert result.detections == []

    def test_detection_fields(self, detector, scene):
        result = detector.detect(scene[0])
        for d in result.detections:
            assert isinstance(d, Detection)
            assert d.size > 0
            assert d.left_eye[0] < d.right_eye[0]

    def test_grouping_reduces_raw(self, detector, scene):
        result = detector.detect(scene[0])
        assert len(result.detections) <= max(result.raw_count, 1)

    def test_detect_video_runs(self, detector):
        frames, _ = synthesize_trailer("50/50", 96, 72, 4, seed=5)
        stream = encode_video(list(frames), gop=4)
        outputs = list(detector.detect_video(stream))
        assert len(outputs) == 4
        decoded, result = outputs[0]
        assert decoded.latency_s > 0
        assert result.detection_time_s > 0

    def test_pretrained_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            FaceDetector.pretrained("resnet")

    def test_rejects_bad_group_threshold(self, cascade):
        with pytest.raises(ConfigurationError):
            FaceDetector(cascade, group_threshold=0.0)

    def test_uint8_input_accepted(self, detector, scene):
        result = detector.detect(scene[0].astype(np.uint8))
        assert result.raw_count >= 0


class TestCollectRawDetections:
    """The vectorized anchor->window conversion must pin the old loop's bits."""

    @pytest.fixture(scope="class")
    def dense_result(self):
        # a cascade with hugely permissive stage thresholds accepts every
        # anchor, so one small frame yields thousands of raw detections
        from repro.haar.cascade import Cascade, Stage, WeakClassifier
        from repro.haar.enumeration import subsampled_feature_pool

        rng = rng_for(9, "collect-cascade")
        pool = subsampled_feature_pool(4, seed=9)
        stages = tuple(
            Stage(
                classifiers=(
                    WeakClassifier(
                        feature=pool[i],
                        threshold=float(rng.normal(0, 5)),
                        left=float(rng.uniform(-1, 1)),
                        right=float(rng.uniform(-1, 1)),
                    ),
                ),
                threshold=-100.0,
            )
            for i in range(2)
        )
        cascade = Cascade(stages=stages, name="accept-all")
        frame = rng_for(9, "collect-frame").uniform(0, 255, (72, 96))
        pipe = FaceDetectionPipeline(cascade)
        return pipe, pipe.process_frame(frame)

    def test_matches_per_pixel_loop(self, dense_result):
        from repro.detect.grouping import RawDetection
        from repro.detect.pipeline import collect_raw_detections

        pipe, result = dense_result
        window = pipe.config.pyramid.window
        got = collect_raw_detections(result.levels, result.kernel_results, window)
        assert len(got) > 100, "frame not dense enough to exercise the batch path"

        # the pre-vectorization per-pixel reference loop, verbatim
        expected: list[RawDetection] = []
        for level, kr in zip(result.levels, result.kernel_results):
            ys, xs = kr.accepted
            if ys.size == 0:
                continue
            scores = kr.score_map[ys, xs]
            size = window * level.scale
            for y, x, s in zip(ys, xs, scores):
                expected.append(
                    RawDetection(
                        x=float(x) * level.scale,
                        y=float(y) * level.scale,
                        size=float(size),
                        score=float(s),
                    )
                )
        assert [(d.x, d.y, d.size, d.score) for d in got] == [
            (d.x, d.y, d.size, d.score) for d in expected
        ]
