"""Tests for detection grouping (S_eyes) and the display kernel."""

import numpy as np
import pytest

from repro.detect.display import display_launch, draw_detections
from repro.detect.grouping import (
    RawDetection,
    group_detections,
    predicted_eyes,
    s_eyes_between,
)
from repro.errors import ConfigurationError, EvaluationError


def det(x, y, size, score=1.0):
    return RawDetection(x=x, y=y, size=size, score=score)


class TestPredictedEyes:
    def test_canonical_positions(self):
        (lx, ly), (rx, ry) = predicted_eyes(det(0, 0, 100))
        assert (lx, ly) == (33.0, 40.0)
        assert (rx, ry) == (67.0, 40.0)

    def test_translation_equivariant(self):
        a = predicted_eyes(det(0, 0, 50))
        b = predicted_eyes(det(10, 20, 50))
        assert b[0] == (a[0][0] + 10, a[0][1] + 20)


class TestSEyes:
    def test_identical_windows_zero(self):
        d = det(5, 5, 40)
        assert s_eyes_between(d, d) == 0.0

    def test_symmetric(self):
        a, b = det(0, 0, 40), det(6, 3, 44)
        assert s_eyes_between(a, b) == pytest.approx(s_eyes_between(b, a))

    def test_far_windows_large(self):
        assert s_eyes_between(det(0, 0, 40), det(200, 200, 40)) > 5.0

    def test_small_shift_below_half(self):
        # a 2px shift of a 48px window is well within the overlap threshold
        assert s_eyes_between(det(0, 0, 48), det(2, 0, 48)) < 0.5


class TestGrouping:
    def test_empty(self):
        assert group_detections([]) == []

    def test_single_passthrough(self):
        out = group_detections([det(3, 4, 30, 2.0)])
        assert len(out) == 1
        assert out[0].score == 2.0

    def test_overlapping_cluster_merges(self):
        cluster = [det(50 + dx, 50 + dy, 40, 1.0) for dx in (-1, 0, 1) for dy in (-1, 0, 1)]
        out = group_detections(cluster)
        assert len(out) == 1
        assert out[0].score == pytest.approx(9.0)
        assert abs(out[0].x - 50) < 1.5

    def test_distant_detections_kept_apart(self):
        out = group_detections([det(0, 0, 30), det(200, 0, 30)])
        assert len(out) == 2

    def test_merge_is_score_weighted(self):
        out = group_detections([det(10, 10, 40, 9.0), det(12, 10, 40, 1.0)])
        assert len(out) == 1
        assert out[0].x == pytest.approx(10.2, abs=0.01)

    def test_two_clusters_plus_outlier(self):
        dets = (
            [det(30 + d, 30, 36, 1.0) for d in range(3)]
            + [det(150 + d, 90, 48, 1.0) for d in range(3)]
            + [det(260, 20, 30, 0.5)]
        )
        out = group_detections(dets)
        assert len(out) == 3

    def test_sorted_by_score_desc(self):
        out = group_detections(
            [det(0, 0, 30, 1.0), det(100, 100, 30, 5.0), det(200, 0, 30, 3.0)]
        )
        scores = [d.score for d in out]
        assert scores == sorted(scores, reverse=True)

    def test_rejects_bad_threshold(self):
        with pytest.raises(EvaluationError):
            group_detections([det(0, 0, 30)], threshold=0.0)

    def test_rejects_bad_detection(self):
        with pytest.raises(EvaluationError):
            RawDetection(x=0, y=0, size=0, score=1.0)


class TestDisplay:
    def test_gray_to_rgb(self):
        frame = np.full((40, 60), 100.0)
        out = draw_detections(frame, [])
        assert out.shape == (40, 60, 3)
        assert out.dtype == np.uint8

    def test_rectangle_drawn(self):
        frame = np.zeros((50, 50))
        out = draw_detections(frame, [det(10, 10, 20)])
        assert tuple(out[10, 15]) == (0, 220, 60)  # top edge
        assert tuple(out[29, 15]) == (0, 220, 60)  # bottom edge
        assert tuple(out[15, 10]) == (0, 220, 60)  # left edge
        assert tuple(out[25, 25]) != (0, 220, 60)  # interior untouched

    def test_out_of_frame_clipped(self):
        frame = np.zeros((30, 30))
        out = draw_detections(frame, [det(25, 25, 40)])
        assert out.shape == (30, 30, 3)

    def test_rgb_input_preserved_shape(self):
        frame = np.zeros((20, 20, 3))
        assert draw_detections(frame, []).shape == (20, 20, 3)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            draw_detections(np.zeros((4, 4, 7)), [])

    def test_launch_model(self):
        launch = display_launch(640, 360, 5, stream=3)
        assert launch.stream == 3
        assert launch.config.grid_blocks == 40 * 23
        assert launch.tag == "display"

    def test_launch_rejects_negative_detections(self):
        with pytest.raises(ConfigurationError):
            display_launch(64, 64, -1, stream=0)
