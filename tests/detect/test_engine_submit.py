"""Tests for the engine's long-lived ``submit()`` / ``drain()`` hook.

The contract: submitted frames resolve to results byte-identical to
serial ``process_frame``, and feeding the engine across many calls never
rebuilds executors or per-worker workspaces — the regression the serving
micro-batcher depends on (one pool for the whole server lifetime, not
one per batch).
"""

import numpy as np
import pytest

from repro.detect.engine import DetectionEngine
from repro.detect.pipeline import FaceDetectionPipeline
from repro.utils.rng import rng_for
from repro.video.synthesis import render_scene
from repro.zoo import quick_cascade


@pytest.fixture(scope="module")
def pipeline():
    return FaceDetectionPipeline(quick_cascade(seed=0))


@pytest.fixture(scope="module")
def frames():
    return [
        render_scene(120, 90, faces=1, rng=rng_for(23, "engine-submit", i))[0]
        for i in range(4)
    ]


def _detections(result):
    return [(d.x, d.y, d.size, d.score) for d in result.raw_detections]


class TestSubmit:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_submit_matches_serial(self, pipeline, frames, workers):
        reference = [pipeline.process_frame(f) for f in frames]
        with DetectionEngine(pipeline, workers=workers) as engine:
            futures = [engine.submit(f) for f in frames]
            engine.drain()
            for ref, future in zip(reference, futures):
                assert future.done()
                assert _detections(future.result()) == _detections(ref)

    def test_submit_accepts_frame_packets(self, pipeline, frames):
        from repro.video.stream import FramePacket

        with DetectionEngine(pipeline, workers=1) as engine:
            packet = FramePacket(index=0, luma=frames[0])
            result = engine.submit(packet).result()
        assert _detections(result) == _detections(pipeline.process_frame(frames[0]))

    def test_submit_error_lands_in_future(self, pipeline):
        with DetectionEngine(pipeline, workers=1) as engine:
            future = engine.submit(np.zeros((3,), dtype=np.float32))
            with pytest.raises(Exception):
                future.result()
            engine.drain()

    def test_drain_idles_immediately_when_nothing_outstanding(self, pipeline):
        with DetectionEngine(pipeline, workers=1) as engine:
            engine.drain()


class TestPersistentPools:
    def test_thread_pool_survives_across_calls(self, pipeline, frames):
        with DetectionEngine(pipeline, workers=2) as engine:
            list(engine.process_frames(iter(frames)))
            pool = engine._thread_pool
            assert pool is not None
            list(engine.process_frames(iter(frames)))
            engine.submit(frames[0]).result()
            assert engine._thread_pool is pool
        assert engine._thread_pool is None  # close() tears it down

    def test_workspaces_cached_across_calls(self, pipeline, frames, monkeypatch):
        built = []
        real = FaceDetectionPipeline.make_workspace

        def counting(self, tracer=None, stream="default"):
            workspace = real(self, tracer=tracer, stream=stream)
            built.append(workspace)
            return workspace

        monkeypatch.setattr(FaceDetectionPipeline, "make_workspace", counting)
        with DetectionEngine(pipeline, workers=2) as engine:
            list(engine.process_frames(iter(frames)))
            first_pass = len(built)
            assert first_pass <= 2
            # the second pass and the submit hook must only reuse
            list(engine.process_frames(iter(frames)))
            engine.submit(frames[0]).result()
            engine.drain()
            assert len(built) == first_pass

    def test_close_is_idempotent_and_engine_recovers(self, pipeline, frames):
        engine = DetectionEngine(pipeline, workers=1)
        try:
            engine.submit(frames[0]).result()
            engine.close()
            engine.close()
            # lazily rebuilt after close
            result = engine.submit(frames[0]).result()
            assert _detections(result) == _detections(pipeline.process_frame(frames[0]))
        finally:
            engine.close()
