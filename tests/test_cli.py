"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main, read_pnm, write_ppm
from repro.errors import ReproError


class TestPnmIO:
    def test_ppm_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        rgb = rng.integers(0, 255, (10, 12, 3), dtype=np.uint8)
        path = tmp_path / "x.ppm"
        write_ppm(path, rgb)
        gray = read_pnm(path)
        assert gray.shape == (10, 12)
        expected = 0.299 * rgb[..., 0] + 0.587 * rgb[..., 1] + 0.114 * rgb[..., 2]
        np.testing.assert_allclose(gray, expected.astype(np.float32), atol=0.5)

    def test_pgm_read(self, tmp_path):
        path = tmp_path / "x.pgm"
        pixels = np.arange(12, dtype=np.uint8).reshape(3, 4)
        path.write_bytes(b"P5 4 3 255\n" + pixels.tobytes())
        np.testing.assert_array_equal(read_pnm(path), pixels)

    def test_pgm_with_comment(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P5\n# a comment\n2 2\n255\n" + bytes([1, 2, 3, 4]))
        np.testing.assert_array_equal(read_pnm(path), [[1, 2], [3, 4]])

    def test_rejects_ascii_pnm(self, tmp_path):
        path = tmp_path / "a.pgm"
        path.write_bytes(b"P2 2 2 255\n1 2 3 4")
        with pytest.raises(ReproError):
            read_pnm(path)


class TestCommands:
    def test_trailers(self, capsys):
        assert main(["trailers"]) == 0
        out = capsys.readouterr().out
        assert "50/50" in out
        assert "The Dictator" in out

    def test_info(self, capsys):
        import repro

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GTX 470" in out
        assert "profile" in out
        assert f"repro {repro.__version__}" in out

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_bench_table1(self, capsys):
        assert main(["bench", "table1"]) == 0
        assert "55660" in capsys.readouterr().out

    def test_bench_unknown(self, capsys):
        assert main(["bench", "fig99"]) == 2

    def test_trace(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "trace",
                    "--frames", "2",
                    "--workers", "2",
                    "--width", "120",
                    "--height", "90",
                    "--output", str(trace_path),
                    "--metrics-output", str(metrics_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "traced 2 frames on 2 workers" in out
        assert "host stage busy time" in out
        payload = json.loads(trace_path.read_text())
        assert payload["traceEvents"]
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["engine.frames"] == 2
        assert "stage_busy_seconds" in snapshot

    def test_detect_demo_scene(self, capsys, tmp_path):
        out_path = tmp_path / "annotated.ppm"
        code = main(
            ["detect", "--width", "192", "--height", "144", "--faces", "1",
             "--output", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detections" in out
        assert out_path.exists()
        assert read_pnm(out_path).shape == (144, 192)

    def test_detect_on_pgm(self, capsys, tmp_path):
        from repro.utils.rng import rng_for
        from repro.video.synthesis import render_scene

        frame, _ = render_scene(160, 120, faces=1, rng=rng_for(3, "cli"))
        path = tmp_path / "scene.pgm"
        path.write_bytes(
            "P5 160 120 255\n".encode() + frame.astype(np.uint8).tobytes()
        )
        assert main(["detect", str(path)]) == 0
        assert "simulated GPU time" in capsys.readouterr().out

    def test_train_small_cascade(self, capsys, tmp_path):
        out_path = tmp_path / "tiny.json"
        code = main(
            ["train", "--output", str(out_path), "--stages", "2,3",
             "--faces", "60", "--pool", "150", "--seed", "5"]
        )
        assert code == 0
        from repro.haar.cascade import Cascade

        cascade = Cascade.load(out_path)
        assert cascade.stage_sizes() == [2, 3]


class TestZooCommands:
    def test_zoo_list_empty_store(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["zoo", "list"]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_zoo_gc_empty_store(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["zoo", "gc"]) == 0
        assert "nothing to collect" in capsys.readouterr().out

    def test_train_unknown_recipe_is_an_error(self, capsys):
        assert main(["train", "--recipe", "nonexistent"]) == 1
        assert "unknown recipe" in capsys.readouterr().err

    def test_zoo_show_unknown_model_is_an_error(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["zoo", "show", "nonexistent"]) == 1
        assert "no published versions" in capsys.readouterr().err

    def test_zoo_list_and_show_published_model(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.zoo import TrainingRecipe, train_model

        micro = TrainingRecipe(
            name="micro", stage_sizes=(2, 3), algorithm="gentle",
            min_hit_rate=0.99, n_faces=60, pool_size=150,
        )
        _, manifest = train_model(micro, seed=5)

        assert main(["zoo", "list"]) == 0
        out = capsys.readouterr().out
        assert "micro" in out and manifest.version in out

        assert main(["zoo", "show", "micro"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["version"] == manifest.version
        assert shown["content_digest"] == manifest.content_digest


class TestDeviceFlags:
    def test_bench_device_list(self, capsys):
        assert main(["bench", "throughput", "--device", "list"]) == 0
        out = capsys.readouterr().out
        assert "requested device:" in out
        assert "reference:cpu ok" in out
        assert "arrayapi:cuda skipped" in out

    def test_trace_device_list(self, capsys):
        assert main(["trace", "--device", "list"]) == 0
        assert "arrayapi:mps" in capsys.readouterr().out

    def test_serve_device_list(self, capsys):
        assert main(["serve", "--device", "list"]) == 0
        assert "reference:cpu ok" in capsys.readouterr().out

    def test_bench_throughput_stamps_device_and_probe(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_throughput.json"
        code = main(
            ["bench", "throughput", "--backend", "arrayapi", "--device", "cpu",
             "--frames", "2", "--workers", "1", "--trials", "1", "--warmup", "0",
             "--cascade", "quick", "--width", "120", "--height", "90",
             "--output", str(out_path)]
        )
        assert code == 0
        assert "arrayapi backend on cpu" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["backend"] == "arrayapi"
        assert payload["device"] == "cpu"
        assert payload["provenance"]["device"] == "cpu"
        assert payload["provenance"]["probe"].endswith("arrayapi:cpu ok")

    def test_gpu_flag_walks_to_cpu(self, capsys, tmp_path, monkeypatch):
        # no accelerator in CI: --gpu must fall back, recording why.
        # An env override (REPRO_BACKEND=...) legitimately short-circuits
        # the probe walk, so the scenario under test needs it cleared.
        import json

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        out_path = tmp_path / "BENCH_throughput.json"
        code = main(
            ["bench", "throughput", "--gpu",
             "--frames", "2", "--workers", "1", "--trials", "1", "--warmup", "0",
             "--cascade", "quick", "--width", "120", "--height", "90",
             "--output", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["device"] == "cpu"
        assert "skipped" in payload["provenance"]["probe"]
