"""Tests for the decoder model, scene synthesis and trailers."""

import numpy as np
import pytest

from repro.data.faces import FaceParams
from repro.errors import BitstreamError, ConfigurationError
from repro.utils.rng import rng_for
from repro.video.decoder import HardwareDecoder
from repro.video.h264 import demux, encode_video
from repro.video.synthesis import composite_face, render_scene
from repro.video.trailer import TRAILERS, TrailerSpec, synthesize_trailer, trailer_frames


@pytest.fixture(scope="module")
def video():
    rng = np.random.default_rng(2)
    frames = [
        np.clip(rng.uniform(0, 255, (36, 48)) + i, 0, 255).astype(np.float32)
        for i in range(8)
    ]
    stream = encode_video(frames, gop=4, quant=2)
    return frames, stream


class TestHardwareDecoder:
    def test_reconstruction_close(self, video):
        frames, stream = video
        decoder = HardwareDecoder(stream)
        decoded = decoder.decode_all(demux(stream))
        for orig, dec in zip(frames, decoded):
            assert np.abs(dec.luma - orig).mean() < 2.5  # quantiser error only

    def test_latency_in_paper_band_at_1080p(self):
        rng = np.random.default_rng(3)
        frames = [rng.uniform(0, 255, (1080, 1920)).astype(np.float32) for _ in range(3)]
        stream = encode_video(frames, gop=4, quant=8)
        decoder = HardwareDecoder(stream)
        decoded = decoder.decode_all(demux(stream))
        for d in decoded:
            assert 0.008 <= d.latency_s <= 0.0125

    def test_latency_scales_with_resolution(self, video):
        _, stream = video
        decoder = HardwareDecoder(stream)
        decoded = decoder.decode_all(demux(stream))
        assert all(d.latency_s < 0.003 for d in decoded)  # tiny frames decode fast

    def test_p_without_reference_raises(self, video):
        _, stream = video
        decoder = HardwareDecoder(stream)
        units = demux(stream)
        with pytest.raises(BitstreamError):
            decoder.decode(units[1])  # P slice first

    def test_nv12_emitted(self, video):
        _, stream = video
        decoder = HardwareDecoder(stream)
        frame = decoder.decode(demux(stream)[0])
        assert frame.nv12.size == 48 * 36 * 3 // 2

    def test_deterministic_latency_per_seed(self, video):
        _, stream = video
        a = HardwareDecoder(stream, seed=5).decode_all(demux(stream))
        b = HardwareDecoder(stream, seed=5).decode_all(demux(stream))
        assert [x.latency_s for x in a] == [x.latency_s for x in b]


class TestSynthesis:
    def test_scene_has_requested_faces(self):
        rng = rng_for(0, "scene")
        frame, truth = render_scene(320, 240, faces=3, rng=rng)
        assert frame.shape == (240, 320)
        assert len(truth) == 3

    def test_annotations_inside_frame(self):
        rng = rng_for(1, "scene")
        _, truth = render_scene(320, 240, faces=4, rng=rng)
        for t in truth:
            assert 0 <= t.x and t.x + t.size <= 320
            assert 0 <= t.y and t.y + t.size <= 240

    def test_eye_annotations_inside_face_box(self):
        rng = rng_for(2, "scene")
        _, truth = render_scene(320, 240, faces=3, rng=rng)
        for t in truth:
            for ex, ey in (t.left_eye, t.right_eye):
                assert t.x <= ex <= t.x + t.size
                assert t.y <= ey <= t.y + t.size

    def test_eye_distance_positive(self):
        rng = rng_for(3, "scene")
        _, truth = render_scene(200, 200, faces=2, rng=rng)
        for t in truth:
            assert t.eye_distance > 0.2 * t.size

    def test_faces_darker_at_eyes_than_cheeks(self):
        rng = rng_for(4, "scene")
        frame, truth = render_scene(300, 300, faces=1, rng=rng, min_face=60)
        t = truth[0]
        ex, ey = t.left_eye
        eye_patch = frame[int(ey) - 2 : int(ey) + 3, int(ex) - 2 : int(ex) + 3]
        cheek_y = int(ey + 0.22 * t.size)
        cheek_patch = frame[cheek_y - 2 : cheek_y + 3, int(ex) - 2 : int(ex) + 3]
        assert eye_patch.mean() < cheek_patch.mean()

    def test_composite_rejects_out_of_bounds(self):
        frame = np.zeros((50, 50))
        with pytest.raises(ConfigurationError):
            composite_face(frame, FaceParams(), 40, 40, 24, rng_for(0, "x"))

    def test_composite_rejects_tiny(self):
        frame = np.zeros((50, 50))
        with pytest.raises(ConfigurationError):
            composite_face(frame, FaceParams(), 0, 0, 8, rng_for(0, "x"))


class TestTrailers:
    def test_ten_trailers_named(self):
        assert len(TRAILERS) == 10
        assert TRAILERS[1].name == "50/50"

    def test_deterministic(self):
        a, truth_a = synthesize_trailer("50/50", 96, 72, 6, seed=1)
        b, truth_b = synthesize_trailer("50/50", 96, 72, 6, seed=1)
        np.testing.assert_array_equal(a, b)
        assert [[t.x for t in f] for f in truth_a] == [[t.x for t in f] for f in truth_b]

    def test_scene_cuts_change_background(self):
        spec = TrailerSpec("cuttest", 0.0, 0.2, 3, 0.4, 0.0)
        frames, _ = synthesize_trailer(spec, 96, 72, 6, seed=2)
        # within a scene the background is static (no faces), across the cut
        # it changes completely
        assert np.array_equal(frames[0], frames[1])
        assert not np.array_equal(frames[2], frames[3])

    def test_faces_move_within_scene(self):
        spec = TrailerSpec("movetest", 3.0, 0.3, 30, 0.4, 0.01)
        _, truth = synthesize_trailer(spec, 200, 150, 12, seed=3)
        with_faces = [f for f in truth if f]
        if len(with_faces) >= 2:
            first, later = truth[0], truth[10]
            if first and later:
                moved = any(
                    abs(a.x - b.x) > 0.5 for a, b in zip(first, later)
                )
                assert moved or all(a.x == b.x for a, b in zip(first, later))

    def test_annotations_in_bounds_all_frames(self):
        for frame, truth in trailer_frames("The Dictator", 160, 120, 8, seed=4):
            for t in truth:
                assert 0 <= t.x and t.x + t.size <= 160 + 1e-6
                assert 0 <= t.y and t.y + t.size <= 120 + 1e-6

    def test_unknown_trailer_rejected(self):
        with pytest.raises(ConfigurationError):
            list(trailer_frames("Not A Movie", 96, 72, 2))

    def test_density_profiles_differ(self):
        dense = sum(
            len(t) for _, t in trailer_frames("50/50", 240, 160, 20, seed=0)
        )
        sparse = sum(
            len(t) for _, t in trailer_frames("American Reunion", 240, 160, 20, seed=0)
        )
        assert dense != sparse
