"""Tests for NV12 packing and the mock H.264 bitstream."""

import numpy as np
import pytest

from repro.errors import BitstreamError
from repro.video.h264 import (
    Bitstream,
    NalType,
    NalUnit,
    demux,
    encode_video,
)
from repro.video.nv12 import extract_luma, nv12_size, pack_nv12


class TestNV12:
    def test_size(self):
        assert nv12_size(1920, 1080) == 1920 * 1080 * 3 // 2

    def test_rejects_odd_dimensions(self):
        with pytest.raises(BitstreamError):
            nv12_size(31, 30)

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        y = rng.uniform(0, 255, (30, 40)).astype(np.float32)
        buf = pack_nv12(y)
        out = extract_luma(buf, 40, 30)
        np.testing.assert_allclose(out, np.round(y), atol=0.5)

    def test_chroma_flat(self):
        buf = pack_nv12(np.zeros((4, 4)))
        assert np.all(buf[16:] == 128)

    def test_wrong_buffer_size_raises(self):
        with pytest.raises(BitstreamError):
            extract_luma(np.zeros(100, dtype=np.uint8), 40, 30)


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(1)
    base = rng.uniform(0, 255, (36, 48)).astype(np.float32)
    out = []
    for i in range(10):
        drift = base + i * 2.0 + rng.normal(0, 1.0, base.shape)
        out.append(np.clip(drift, 0, 255).astype(np.float32))
    return out


class TestEncodeVideo:
    def test_gop_structure(self, frames):
        stream = encode_video(frames, gop=4)
        slices = [n for n in stream.nals if n.nal_type in (NalType.IDR_SLICE, NalType.P_SLICE)]
        types = [n.nal_type for n in slices]
        assert types[0] == NalType.IDR_SLICE
        assert types[4] == NalType.IDR_SLICE
        assert types[1] == NalType.P_SLICE

    def test_headers_first(self, frames):
        stream = encode_video(frames)
        assert stream.nals[0].nal_type == NalType.SPS
        assert stream.nals[1].nal_type == NalType.PPS

    def test_frame_count(self, frames):
        assert encode_video(frames).n_frames == len(frames)

    def test_p_frames_smaller_than_idr(self, frames):
        stream = encode_video(frames, gop=10)
        idr = next(n for n in stream.nals if n.nal_type == NalType.IDR_SLICE)
        p = next(n for n in stream.nals if n.nal_type == NalType.P_SLICE)
        assert len(p.payload) < len(idr.payload)

    def test_bitrate_positive(self, frames):
        assert encode_video(frames).bitrate() > 0

    def test_rejects_empty(self):
        with pytest.raises(BitstreamError):
            encode_video([])

    def test_rejects_mixed_shapes(self, frames):
        bad = frames[:2] + [np.zeros((5, 5), dtype=np.float32)]
        with pytest.raises(BitstreamError):
            encode_video(bad)

    def test_serialize_parse_roundtrip(self, frames):
        stream = encode_video(frames, gop=5)
        parsed = Bitstream.parse(stream.serialize())
        assert parsed.width == stream.width
        assert parsed.gop == 5
        assert len(parsed.nals) == len(stream.nals)
        assert all(
            a.nal_type == b.nal_type and a.payload == b.payload
            for a, b in zip(parsed.nals, stream.nals)
        )

    def test_parse_rejects_garbage(self):
        with pytest.raises(BitstreamError):
            Bitstream.parse(b"JUNKJUNKJUNKJUNK")


class TestDemux:
    def test_one_unit_per_frame(self, frames):
        units = demux(encode_video(frames))
        assert len(units) == len(frames)
        assert [u.frame_index for u in units] == list(range(len(frames)))

    def test_idr_flags(self, frames):
        units = demux(encode_video(frames, gop=4))
        assert units[0].is_idr and units[4].is_idr
        assert not units[1].is_idr

    def test_rejects_slice_before_headers(self):
        stream = Bitstream(width=8, height=8, fps=24, gop=4)
        stream.nals.append(NalUnit(NalType.IDR_SLICE, b"xx"))
        with pytest.raises(BitstreamError):
            demux(stream)

    def test_coded_bytes_exposed(self, frames):
        units = demux(encode_video(frames))
        assert all(u.coded_bytes > 0 for u in units)
