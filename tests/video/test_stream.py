"""Tests for the streaming frame sources feeding the batched engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.decoder import HardwareDecoder
from repro.video.h264 import demux, encode_video
from repro.video.stream import decoded_stream, synthetic_stream, trailer_stream


class TestSyntheticStream:
    def test_deterministic_and_indexed(self):
        a = list(synthetic_stream(96, 64, 4, seed=3))
        b = list(synthetic_stream(96, 64, 4, seed=3))
        assert [p.index for p in a] == [0, 1, 2, 3]
        for pa, pb in zip(a, b):
            assert np.array_equal(pa.luma, pb.luma)
            assert pa.shape == (64, 96)
            assert pa.decode_latency_s == 0.0

    def test_frames_differ_across_indices_and_seeds(self):
        a, b = list(synthetic_stream(96, 64, 2, seed=3))
        assert not np.array_equal(a.luma, b.luma)
        (other,) = synthetic_stream(96, 64, 1, seed=4)
        assert not np.array_equal(a.luma, other.luma)

    def test_lazy(self):
        stream = synthetic_stream(96, 64, 10**9)
        assert next(stream).index == 0  # materialising all would never return

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            list(synthetic_stream(16, 16, 1))
        with pytest.raises(ConfigurationError):
            list(synthetic_stream(96, 64, 0))


class TestTrailerStream:
    def test_matches_trailer_frames(self):
        from repro.video.trailer import TRAILERS, trailer_frames

        spec = TRAILERS[0]
        packets = list(trailer_stream(spec, 96, 64, 3, seed=1))
        reference = list(trailer_frames(spec, 96, 64, 3, seed=1))
        assert [p.index for p in packets] == [0, 1, 2]
        for packet, (frame, annotations) in zip(packets, reference):
            assert np.array_equal(packet.luma, frame)
            assert packet.annotations == annotations


class TestDecodedStream:
    def test_matches_decoder_session(self):
        rng = np.random.default_rng(9)
        frames = [
            np.clip(rng.uniform(0, 255, (48, 64)) + i, 0, 255).astype(np.float32)
            for i in range(5)
        ]
        bitstream = encode_video(frames, gop=3, quant=2)
        packets = list(decoded_stream(bitstream, seed=7))
        reference = HardwareDecoder(bitstream, seed=7).decode_all(demux(bitstream))
        assert [p.index for p in packets] == [d.frame_index for d in reference]
        for packet, decoded in zip(packets, reference):
            assert np.array_equal(packet.luma, decoded.luma)
            assert packet.decode_latency_s == decoded.latency_s
            assert packet.decode_latency_s > 0
