"""Tests for the shared-memory frame ring (process-sharding transport).

The ring's contract: fixed slots, single-producer put/release with loud
failures on misuse (exhaustion means a leaked slot, double-release means
a double-emit), pickle-fallback signalling for oversized frames, and
byte-exact pixel round-trips through both the producer-side and the
reader-side (:func:`~repro.video.shm.attach_view`) views.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.shm import SharedFrameRing, SlotTicket, attach_view, detach_all
from repro.video.stream import FramePacket, synthetic_stream


@pytest.fixture
def ring():
    with SharedFrameRing(slots=3, slot_bytes=64 * 48) as ring:
        yield ring
    detach_all()


def _frame(seed: int, shape=(48, 64), dtype=np.uint8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.integer):
        return rng.integers(0, 255, size=shape, dtype=dtype)
    return rng.random(size=shape).astype(dtype)


class TestRing:
    def test_put_view_roundtrip(self, ring):
        frame = _frame(0)
        ticket = ring.put(frame)
        assert isinstance(ticket, SlotTicket)
        np.testing.assert_array_equal(ring.view(ticket), frame)

    def test_put_copies_rather_than_aliases(self, ring):
        frame = _frame(1)
        ticket = ring.put(frame)
        frame[...] = 0  # producer may reuse its buffer immediately
        assert ring.view(ticket).max() > 0

    def test_slots_cycle_through_release(self, ring):
        # 3 slots service many more frames as long as release keeps pace
        for generation in range(4):
            tickets = [ring.put(_frame(10 + generation * 3 + i)) for i in range(3)]
            assert ring.free_slots == 0
            for i, ticket in enumerate(tickets):
                np.testing.assert_array_equal(
                    ring.view(ticket), _frame(10 + generation * 3 + i)
                )
                ring.release(ticket)
        assert ring.free_slots == 3

    def test_exhaustion_is_loud(self, ring):
        for i in range(3):
            ring.put(_frame(i))
        with pytest.raises(ConfigurationError, match="occupied"):
            ring.put(_frame(99))

    def test_double_release_is_loud(self, ring):
        ticket = ring.put(_frame(0))
        ring.release(ticket)
        with pytest.raises(ConfigurationError, match="released twice"):
            ring.release(ticket)

    def test_foreign_ticket_rejected(self, ring):
        foreign = SlotTicket(
            ring_name="psm_not_this_ring", slot=0, offset=0,
            shape=(48, 64), dtype="uint8",
        )
        with pytest.raises(ConfigurationError, match="belongs to ring"):
            ring.release(foreign)

    def test_oversized_frame_falls_back_to_pickle(self, ring):
        big = _frame(0, shape=(480, 640))
        assert not ring.fits(big)
        assert ring.put(big) is None  # caller ships inline instead
        assert ring.free_slots == 3  # no slot consumed

    def test_float32_frames_roundtrip(self, ring):
        frame = _frame(2, shape=(24, 32), dtype=np.float32)
        ticket = ring.put(frame)
        assert ticket.dtype == "float32"
        np.testing.assert_array_equal(ring.view(ticket), frame)

    def test_attach_view_same_process(self, ring):
        # attach_view is the reader-side path; in-process it must see the
        # same bytes the producer wrote (cross-process is covered by the
        # engine integration tests)
        frame = _frame(3)
        ticket = ring.put(frame)
        np.testing.assert_array_equal(attach_view(ticket), frame)

    def test_close_is_idempotent(self):
        ring = SharedFrameRing(slots=1, slot_bytes=16)
        ring.close()
        ring.close()
        with pytest.raises(ConfigurationError, match="closed"):
            ring.put(np.zeros(4, dtype=np.uint8))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedFrameRing(slots=0, slot_bytes=16)
        with pytest.raises(ConfigurationError):
            SharedFrameRing(slots=1, slot_bytes=0)


class TestSharedFramePacket:
    def test_share_and_materialise(self):
        packet = next(iter(synthetic_stream(64, 48, 1, faces=1, seed=7)))
        with SharedFrameRing(slots=1, slot_bytes=int(packet.luma.nbytes)) as ring:
            self._roundtrip(ring, packet)
        detach_all()

    def _roundtrip(self, ring, packet):
        shared = packet.share(ring)
        assert shared is not None
        assert shared.index == packet.index
        assert shared.shape == packet.luma.shape
        np.testing.assert_array_equal(shared.luma, packet.luma)

        back = shared.materialise()
        assert isinstance(back, FramePacket)
        assert back.index == packet.index
        assert back.annotations == packet.annotations
        np.testing.assert_array_equal(back.luma, packet.luma)
        ring.release(shared.ticket)

    def test_share_oversized_returns_none(self):
        packet = next(iter(synthetic_stream(64, 48, 1, faces=1, seed=7)))
        with SharedFrameRing(slots=1, slot_bytes=8) as tiny:
            assert packet.share(tiny) is None
