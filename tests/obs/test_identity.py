"""Instrumentation must not change behaviour.

The contract of the whole observability layer: with tracing and metrics
enabled, the engine produces output *byte-identical* to the PR 1
reference path — detections, depth/margin/sigma maps and simulated
schedules all compare exactly equal.
"""

import numpy as np
import pytest

from repro.detect.engine import DetectionEngine
from repro.detect.pipeline import FaceDetectionPipeline
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.utils.rng import rng_for
from repro.video.synthesis import render_scene
from repro.zoo import quick_cascade


@pytest.fixture(scope="module")
def pipeline():
    return FaceDetectionPipeline(quick_cascade(seed=0))


@pytest.fixture(scope="module")
def frames():
    return [
        render_scene(120, 90, faces=1, rng=rng_for(11, "engine-test", i))[0]
        for i in range(5)
    ]


def _assert_identical(reference, candidate):
    assert len(candidate) == len(reference)
    for ref, out in zip(reference, candidate):
        ref_dets = [(d.x, d.y, d.size, d.score) for d in ref.raw_detections]
        out_dets = [(d.x, d.y, d.size, d.score) for d in out.raw_detections]
        assert out_dets == ref_dets
        assert out.schedule.makespan_s == ref.schedule.makespan_s
        for kr, ko in zip(ref.kernel_results, out.kernel_results):
            assert np.array_equal(kr.depth_map, ko.depth_map)
            assert np.array_equal(kr.margin_map, ko.margin_map)
            assert np.array_equal(kr.sigma_map, ko.sigma_map)


class TestTracingIsBehaviourNeutral:
    def test_traced_engine_matches_untraced_reference(self, pipeline, frames):
        reference = [pipeline.process_frame(f) for f in frames]

        tracer = Tracer()
        metrics = MetricsRegistry()
        engine = DetectionEngine(pipeline, workers=2, tracer=tracer, metrics=metrics)
        traced = list(engine.process_frames(iter(frames)))

        _assert_identical(reference, traced)
        # ... while actually having observed the run
        assert len(tracer.spans()) > 0
        assert metrics.counter("engine.frames").value == len(frames)

    def test_traced_serial_pipeline_matches_untraced(self, frames):
        untraced = FaceDetectionPipeline(quick_cascade(seed=0))
        traced_pipeline = FaceDetectionPipeline(quick_cascade(seed=0), tracer=Tracer())
        reference = [untraced.process_frame(f) for f in frames]
        traced = [traced_pipeline.process_frame(f) for f in frames]
        _assert_identical(reference, traced)
        assert len(traced_pipeline.tracer.spans()) > 0

    def test_inline_workers_traced_identical(self, pipeline, frames):
        reference = [pipeline.process_frame(f) for f in frames]
        engine = DetectionEngine(
            pipeline, workers=0, tracer=Tracer(), metrics=MetricsRegistry()
        )
        _assert_identical(reference, list(engine.process_frames(iter(frames))))

    def test_span_volume_scales_with_frames(self, pipeline, frames):
        tracer = Tracer()
        engine = DetectionEngine(pipeline, workers=2, tracer=tracer)
        list(engine.process_frames(iter(frames)))
        frame_spans = [s for s in tracer.spans() if s.name == "frame"]
        assert len(frame_spans) == len(frames)
        assert sorted(s.args["frame"] for s in frame_spans) == list(range(len(frames)))
