"""FlightRecorder: bounded ring semantics, dumps, thread safety."""

import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.flight import FlightRecorder


class TestRing:
    def test_records_in_order_with_seq_and_ts(self):
        ring = FlightRecorder(capacity=8)
        ring.record("lifecycle", phase="warmup")
        ring.record("request", trace_id="abc", status=200)
        snap = ring.snapshot()
        assert snap["capacity"] == 8
        assert snap["recorded"] == 2
        assert snap["dropped"] == 0
        first, second = snap["events"]
        assert first["kind"] == "lifecycle" and first["seq"] == 0
        assert second["kind"] == "request" and second["seq"] == 1
        assert second["trace_id"] == "abc"
        assert second["ts"] >= first["ts"] > 0
        assert len(ring) == 2

    def test_wrap_keeps_newest_and_counts_dropped(self):
        ring = FlightRecorder(capacity=4)
        for i in range(10):
            ring.record("request", i=i)
        snap = ring.snapshot()
        assert [e["i"] for e in snap["events"]] == [6, 7, 8, 9]
        assert snap["recorded"] == 10
        assert snap["dropped"] == 6
        assert ring.recorded == 10
        assert ring.dropped == 6

    def test_snapshot_is_a_copy(self):
        ring = FlightRecorder(capacity=4)
        ring.record("request", i=0)
        snap = ring.snapshot()
        snap["events"][0]["i"] = 99
        assert ring.snapshot()["events"][0]["i"] == 0

    def test_clear(self):
        ring = FlightRecorder(capacity=2)
        for i in range(5):
            ring.record("request", i=i)
        ring.clear()
        assert len(ring) == 0
        assert ring.snapshot()["dropped"] == 0

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=0)


class TestDump:
    def test_dump_writes_valid_json_with_reason(self, tmp_path):
        ring = FlightRecorder(capacity=4)
        ring.record("lifecycle", phase="worker_crash", trace_id="abc")
        path = tmp_path / "flight.json"
        snap = ring.dump(str(path), reason="worker_crash")
        assert snap["reason"] == "worker_crash"
        on_disk = json.loads(path.read_text())
        assert on_disk == snap
        assert on_disk["events"][0]["trace_id"] == "abc"

    def test_dump_stringifies_unserialisable_fields(self, tmp_path):
        ring = FlightRecorder(capacity=4)
        ring.record("weird", obj=object())
        path = tmp_path / "flight.json"
        ring.dump(str(path))
        assert "object object" in json.loads(path.read_text())["events"][0]["obj"]


class TestThreadSafety:
    def test_concurrent_records_all_accounted(self):
        ring = FlightRecorder(capacity=64)

        def work():
            for i in range(500):
                ring.record("request", i=i)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = ring.snapshot()
        assert snap["recorded"] == 2000
        assert snap["dropped"] == 2000 - 64
        assert len(snap["events"]) == 64
        # seqs are unique and the ring holds the newest window
        seqs = [e["seq"] for e in snap["events"]]
        assert len(set(seqs)) == 64
        assert max(seqs) == 1999
