"""Tracer contract: nesting, thread-safety, and the disabled fast path."""

import json
import threading

from repro.obs.tracer import NULL_TRACER, Tracer


class TestSpans:
    def test_records_interval(self):
        tracer = Tracer()
        with tracer.span("work", cat="test", level=3):
            pass
        (span,) = tracer.spans()
        assert span.name == "work"
        assert span.cat == "test"
        assert span.args == {"level": 3}
        assert span.dur_us >= 0.0
        assert span.end_us == span.start_us + span.dur_us
        assert span.thread_name == threading.current_thread().name

    def test_nesting_records_both_and_contains_child(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert set(spans) == {"outer", "inner"}
        # inner finishes first (completion order) and lies inside outer
        assert tracer.spans()[0].name == "inner"
        outer, inner = spans["outer"], spans["inner"]
        assert outer.start_us <= inner.start_us
        assert inner.end_us <= outer.end_us

    def test_span_survives_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert [s.name for s in tracer.spans()] == ["boom"]

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert len(tracer) == 0


class TestThreadSafety:
    def test_concurrent_appends_lose_nothing(self):
        tracer = Tracer()
        n_threads, per_thread = 8, 200

        def work():
            for i in range(per_thread):
                with tracer.span("t"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        assert len(spans) == n_threads * per_thread
        # thread names are unique per Thread object (idents can be reused)
        assert len({s.thread_name for s in spans}) == n_threads

    def test_spans_returns_snapshot_copy(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        snap = tracer.spans()
        snap.clear()
        assert len(tracer.spans()) == 1


class TestDisabledFastPath:
    def test_null_tracer_shares_one_context_manager(self):
        # zero-allocation fast path: every call hands back the same object
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert Tracer(enabled=False).span("a") is NULL_TRACER.span("a")

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("invisible"):
            pass
        assert len(NULL_TRACER) == 0
        assert not NULL_TRACER.enabled

    def test_disabled_context_manager_is_reentrant(self):
        cm = NULL_TRACER.span("x")
        with cm:
            with cm:
                pass
        assert NULL_TRACER.spans() == []

    def test_span_args_are_json_serialisable(self):
        tracer = Tracer()
        with tracer.span("k", frame=2, tag="integral"):
            pass
        (span,) = tracer.spans()
        json.dumps(span.args)


class TestCrossProcessPrimitives:
    """origin / extend / drain: what process sharding builds on."""

    def test_shared_origin_aligns_timelines(self):
        import time

        parent = Tracer()
        worker = Tracer(origin=parent.origin)  # what init_worker does
        anchor = time.perf_counter()
        with worker.span("w"):
            pass
        (span,) = worker.spans()
        # the worker span lands where the parent clock says "now", not
        # at the worker tracer's construction instant
        expected_us = (anchor - parent.origin) * 1e6
        assert abs(span.start_us - expected_us) < 1e5  # within 100 ms

    def test_origin_default_is_construction_time(self):
        import time

        before = time.perf_counter()
        tracer = Tracer()
        assert before <= tracer.origin <= time.perf_counter()

    def test_drain_is_atomic_snapshot_and_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        drained = tracer.drain()
        assert [s.name for s in drained] == ["a", "b"]
        assert tracer.spans() == []
        assert tracer.drain() == []

    def test_extend_merges_foreign_spans(self):
        parent = Tracer()
        with parent.span("local"):
            pass
        worker = Tracer(origin=parent.origin)
        with worker.span("remote"):
            pass
        parent.extend(worker.drain())
        assert {s.name for s in parent.spans()} == {"local", "remote"}

    def test_extend_is_thread_safe(self):
        parent = Tracer()

        def feed(tag):
            worker = Tracer(origin=parent.origin)
            for i in range(50):
                with worker.span(f"{tag}-{i}"):
                    pass
                parent.extend(worker.drain())

        threads = [
            threading.Thread(target=feed, args=(t,)) for t in ("x", "y", "z")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(parent) == 150
