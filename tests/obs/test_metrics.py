"""Metrics registry contract and snapshot determinism under a seeded run."""

import threading

import pytest

from repro.detect.engine import DetectionEngine
from repro.detect.pipeline import FaceDetectionPipeline
from repro.errors import ConfigurationError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import build_snapshot
from repro.obs.tracer import Tracer
from repro.utils.rng import rng_for
from repro.video.synthesis import render_scene
from repro.zoo import quick_cascade


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_tracks_max(self):
        g = Gauge()
        assert g.max == 0.0
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0
        assert g.max == 3.0

    def test_histogram_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(100) == 100.0
        assert h.percentile(0) == 1.0
        with pytest.raises(ConfigurationError):
            h.percentile(101)

    def test_histogram_summary_empty(self):
        assert Histogram().summary()["count"] == 0


class TestHistogramBoundedMemory:
    """A serve-lifetime histogram must not grow without bound: past
    ``max_samples`` the stored values become a uniform reservoir while
    count/sum/min/max/mean stay exact."""

    def test_samples_held_never_exceeds_cap(self):
        h = Histogram(max_samples=100)
        for v in range(1000):
            h.observe(float(v))
        assert h.samples_held == 100
        assert h.count == 1000

    def test_exact_stats_survive_sampling(self):
        h = Histogram(max_samples=64)
        values = [float(v) for v in range(1, 1001)]
        for v in values:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 1000
        assert s["sum"] == pytest.approx(sum(values))
        assert s["min"] == 1.0
        assert s["max"] == 1000.0
        assert s["mean"] == pytest.approx(sum(values) / 1000)

    def test_reservoir_percentiles_are_sane(self):
        """On 1..10000 the sampled p50 must land near 5000 — a reservoir
        gone wrong (e.g. keeping only the first cap values) lands at 2048."""
        h = Histogram(max_samples=4096)
        for v in range(1, 10001):
            h.observe(float(v))
        assert h.samples_held == 4096
        assert 3500 <= h.percentile(50) <= 6500
        assert h.percentile(95) >= 8000

    def test_below_cap_percentiles_stay_exact(self):
        h = Histogram(max_samples=4096)
        for v in range(1, 101):
            h.observe(float(v))
        assert h.samples_held == 100
        assert h.percentile(50) == 50.0

    def test_reset_clears_reservoir_state(self):
        h = Histogram(max_samples=8)
        for v in range(100):
            h.observe(float(v))
        h.summary(reset=True)
        assert h.count == 0
        assert h.samples_held == 0
        h.observe(5.0)
        assert h.summary() == {
            "count": 1, "sum": 5.0, "min": 5.0, "mean": 5.0,
            "p50": 5.0, "p95": 5.0, "max": 5.0,
        }

    def test_cap_validated(self):
        with pytest.raises(ConfigurationError):
            Histogram(max_samples=0)

    def test_sampling_does_not_touch_global_rng(self):
        import random

        random.seed(99)
        state = random.getstate()
        h = Histogram(max_samples=4)
        for v in range(100):
            h.observe(float(v))
        assert random.getstate() == state

    def test_histogram_summary(self):
        h = Histogram()
        for v in (4.0, 1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == 2.5
        assert s["p50"] == 2.0


class TestRegistry:
    def test_get_or_create_and_kind_conflict(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(ConfigurationError):
            reg.gauge("a")

    def test_snapshot_sections_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc()
        reg.counter("a.count").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.count", "z.count"]
        assert snap["gauges"]["g"] == {"value": 2, "max": 2}
        assert snap["histograms"]["h"]["count"] == 1

    def test_thread_safe_counting(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(500):
                reg.counter("n").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n").value == 2000


class TestSnapshotDeterminism:
    """Two identical seeded runs must agree on everything non-temporal."""

    @pytest.fixture(scope="class")
    def frames(self):
        return [
            render_scene(96, 72, faces=1, rng=rng_for(3, "obs-seeded", i))[0]
            for i in range(4)
        ]

    def _run(self, frames):
        pipeline = FaceDetectionPipeline(quick_cascade(seed=0))
        tracer = Tracer()
        registry = MetricsRegistry()
        engine = DetectionEngine(pipeline, workers=2, tracer=tracer, metrics=registry)
        list(engine.process_frames(iter(frames)))
        return build_snapshot(registry, tracer)

    def test_seeded_runs_agree(self, frames):
        a = self._run(frames)
        b = self._run(frames)
        # identical structure everywhere
        assert set(a) == set(b)
        assert set(a["counters"]) == set(b["counters"])
        assert set(a["gauges"]) == set(b["gauges"])
        assert set(a["histograms"]) == set(b["histograms"])
        assert set(a["stage_busy_seconds"]) == set(b["stage_busy_seconds"])
        # identical values for everything that is not a wall-clock sample
        assert a["counters"] == b["counters"]
        assert a["stage1_rejection_rate"] == b["stage1_rejection_rate"]
        for name, hist in a["histograms"].items():
            assert hist["count"] == b["histograms"][name]["count"]

    def test_snapshot_has_acceptance_fields(self, frames):
        snap = self._run(frames)
        assert snap["stage_busy_seconds"]  # per-stage busy-seconds
        assert {"pyramid.antialias", "pyramid.scale", "integral", "cascade", "grouping",
                "schedule", "frame"} <= set(snap["stage_busy_seconds"])
        latency = snap["histograms"]["engine.frame_latency_s"]
        assert latency["count"] == 4
        assert latency["p95"] >= latency["p50"] > 0.0
        assert snap["max_queue_depth"] >= 1
        assert 0.0 <= snap["stage1_rejection_rate"] <= 1.0


class TestSnapshotUnderConcurrentWriters:
    """The serving layer reads ``snapshot()`` on every ``/metrics`` hit
    while engine workers write; no read may ever be torn or lost."""

    def _hammer(self, registry, stop, wrote):
        i = 0
        while not stop.is_set():
            registry.counter("c").inc()
            registry.histogram("h").observe(float(i % 7))
            registry.gauge("g").set(float(i % 11))
            i += 1
        wrote.append(i)

    def test_snapshot_is_consistent_and_monotone(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        wrote: list[int] = []
        workers = [
            threading.Thread(target=self._hammer, args=(registry, stop, wrote))
            for _ in range(4)
        ]
        for t in workers:
            t.start()
        try:
            last_counter = 0.0
            for _ in range(200):
                snap = registry.snapshot()
                c = snap["counters"]["c"]
                assert c >= last_counter, "counter went backwards across snapshots"
                last_counter = c
                h = snap["histograms"]["h"]
                if h["count"]:
                    assert h["min"] <= h["p50"] <= h["p95"] <= h["max"]
                    assert h["count"] * h["min"] <= h["sum"] + 1e-9
                    assert h["sum"] <= h["count"] * h["max"] + 1e-9
                g = snap["gauges"]["g"]
                assert g["max"] >= g["value"], "gauge (value, max) pair torn"
        finally:
            stop.set()
            for t in workers:
                t.join()
        total = sum(wrote)
        final = registry.snapshot()
        assert final["counters"]["c"] == pytest.approx(total)
        assert final["histograms"]["h"]["count"] == total

    def test_resetting_snapshots_drain_exactly_once(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        wrote: list[int] = []
        workers = [
            threading.Thread(target=self._hammer, args=(registry, stop, wrote))
            for _ in range(4)
        ]
        for t in workers:
            t.start()
        drained_count = 0
        drained_sum = 0.0
        drained_obs = 0
        try:
            for _ in range(100):
                snap = registry.snapshot(reset=True)
                drained_count += snap["counters"].get("c", 0.0)
                drained_sum += snap["histograms"].get("h", {}).get("sum", 0.0)
                drained_obs += snap["histograms"].get("h", {}).get("count", 0)
        finally:
            stop.set()
            for t in workers:
                t.join()
        final = registry.snapshot(reset=True)
        drained_count += final["counters"]["c"]
        drained_sum += final["histograms"]["h"]["sum"]
        drained_obs += final["histograms"]["h"]["count"]
        total = sum(wrote)
        assert drained_count == pytest.approx(total)
        assert drained_obs == total
        expected_sum = sum(float(i % 7) for n in wrote for i in range(n))
        assert drained_sum == pytest.approx(expected_sum)
        # gauges survive draining snapshots
        assert registry.snapshot()["gauges"]["g"]["max"] >= 0.0

    def test_non_resetting_snapshot_does_not_drain(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(1.0)
        assert registry.snapshot()["counters"]["c"] == 3.0
        assert registry.snapshot()["counters"]["c"] == 3.0
        assert registry.snapshot(reset=True)["histograms"]["h"]["count"] == 1
        after = registry.snapshot()
        assert after["counters"]["c"] == 0.0
        assert after["histograms"]["h"]["count"] == 0
