"""Metrics registry contract and snapshot determinism under a seeded run."""

import threading

import pytest

from repro.detect.engine import DetectionEngine
from repro.detect.pipeline import FaceDetectionPipeline
from repro.errors import ConfigurationError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import build_snapshot
from repro.obs.tracer import Tracer
from repro.utils.rng import rng_for
from repro.video.synthesis import render_scene
from repro.zoo import quick_cascade


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_tracks_max(self):
        g = Gauge()
        assert g.max == 0.0
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0
        assert g.max == 3.0

    def test_histogram_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(100) == 100.0
        assert h.percentile(0) == 1.0
        with pytest.raises(ConfigurationError):
            h.percentile(101)

    def test_histogram_summary_empty(self):
        assert Histogram().summary()["count"] == 0

    def test_histogram_summary(self):
        h = Histogram()
        for v in (4.0, 1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == 2.5
        assert s["p50"] == 2.0


class TestRegistry:
    def test_get_or_create_and_kind_conflict(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(ConfigurationError):
            reg.gauge("a")

    def test_snapshot_sections_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc()
        reg.counter("a.count").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.count", "z.count"]
        assert snap["gauges"]["g"] == {"value": 2, "max": 2}
        assert snap["histograms"]["h"]["count"] == 1

    def test_thread_safe_counting(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(500):
                reg.counter("n").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n").value == 2000


class TestSnapshotDeterminism:
    """Two identical seeded runs must agree on everything non-temporal."""

    @pytest.fixture(scope="class")
    def frames(self):
        return [
            render_scene(96, 72, faces=1, rng=rng_for(3, "obs-seeded", i))[0]
            for i in range(4)
        ]

    def _run(self, frames):
        pipeline = FaceDetectionPipeline(quick_cascade(seed=0))
        tracer = Tracer()
        registry = MetricsRegistry()
        engine = DetectionEngine(pipeline, workers=2, tracer=tracer, metrics=registry)
        list(engine.process_frames(iter(frames)))
        return build_snapshot(registry, tracer)

    def test_seeded_runs_agree(self, frames):
        a = self._run(frames)
        b = self._run(frames)
        # identical structure everywhere
        assert set(a) == set(b)
        assert set(a["counters"]) == set(b["counters"])
        assert set(a["gauges"]) == set(b["gauges"])
        assert set(a["histograms"]) == set(b["histograms"])
        assert set(a["stage_busy_seconds"]) == set(b["stage_busy_seconds"])
        # identical values for everything that is not a wall-clock sample
        assert a["counters"] == b["counters"]
        assert a["stage1_rejection_rate"] == b["stage1_rejection_rate"]
        for name, hist in a["histograms"].items():
            assert hist["count"] == b["histograms"][name]["count"]

    def test_snapshot_has_acceptance_fields(self, frames):
        snap = self._run(frames)
        assert snap["stage_busy_seconds"]  # per-stage busy-seconds
        assert {"pyramid.antialias", "pyramid.scale", "integral", "cascade", "grouping",
                "schedule", "frame"} <= set(snap["stage_busy_seconds"])
        latency = snap["histograms"]["engine.frame_latency_s"]
        assert latency["count"] == 4
        assert latency["p95"] >= latency["p50"] > 0.0
        assert snap["max_queue_depth"] >= 1
        assert 0.0 <= snap["stage1_rejection_rate"] <= 1.0
