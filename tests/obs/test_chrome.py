"""Chrome-trace exporter: JSON validity, track layout, profiler bridge."""

import json

import pytest

from repro import FaceDetector
from repro.detect.pipeline import FaceDetectionPipeline
from repro.errors import ReproError
from repro.gpusim.profiler import CommandLineProfiler
from repro.obs.capture import run_trace
from repro.obs.chrome import (
    GPUSIM_PID,
    HOST_PID,
    span_events,
    validate_chrome_events,
    write_chrome_trace,
)
from repro.obs.tracer import Tracer
from repro.utils.rng import rng_for
from repro.video.synthesis import render_scene
from repro.zoo import quick_cascade


@pytest.fixture(scope="module")
def capture():
    pipeline = FaceDetectionPipeline(quick_cascade(seed=0))
    return run_trace(frames=3, workers=2, width=120, height=90, pipeline=pipeline)


def _complete(events, pid=None):
    return [e for e in events if e.get("ph") == "X" and (pid is None or e["pid"] == pid)]


class TestValidator:
    def test_accepts_good_events(self):
        validate_chrome_events(
            [{"ph": "X", "ts": 0.0, "dur": 1.0, "pid": 1, "tid": 1, "name": "a"}]
        )

    @pytest.mark.parametrize(
        "bad",
        [
            [{"ts": 0.0}],  # no phase
            [{"ph": "X", "ts": 0.0, "dur": 1.0, "pid": 1, "tid": 1}],  # no name
            [{"ph": "X", "ts": 0.0, "pid": 1, "tid": 1, "name": "a"}],  # no dur
            [{"ph": "X", "ts": 0.0, "dur": -1.0, "pid": 1, "tid": 1, "name": "a"}],
            ["not-an-object"],
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ReproError):
            validate_chrome_events(bad)

    def test_rejects_unserialisable(self):
        with pytest.raises(ReproError):
            validate_chrome_events([{"ph": "X", "ts": object()}])


class TestEngineTrace:
    def test_required_fields_on_every_event(self, capture):
        validate_chrome_events(capture.events)
        for event in _complete(capture.events):
            assert event["dur"] >= 0.0
            assert isinstance(event["tid"], int)

    def test_host_spans_per_worker_thread(self, capture):
        host = _complete(capture.events, HOST_PID)
        assert {e["name"] for e in host} >= {
            "frame", "integral", "cascade", "grouping", "schedule",
            "pyramid.antialias", "pyramid.scale",
        }
        # two workers -> two distinct host tracks
        assert len({e["tid"] for e in host}) == 2

    def test_sim_kernels_one_track_per_stream(self, capture):
        sim = _complete(capture.events, GPUSIM_PID)
        assert sim, "no simulated kernel events exported"
        streams = {t.stream for r in capture.results for t in r.schedule.timeline.traces}
        assert {e["tid"] for e in sim} == streams
        assert len(streams) > 1  # distinct per-stream tracks
        names = {e["name"] for e in sim}
        assert any(n.startswith("cascade_s") for n in names)

    def test_frames_anchored_at_host_frame_spans(self, capture):
        anchors = {
            s.args["frame"]: s.start_us
            for s in capture.tracer.spans()
            if s.name == "frame"
        }
        assert set(anchors) == {0, 1, 2}
        for event in _complete(capture.events, GPUSIM_PID):
            frame = event["args"]["frame"]
            assert event["ts"] >= anchors[frame] - 1e-3

    def test_snapshot_records_backend_and_registry(self, capture):
        info = capture.snapshot["backend"]
        assert info["active"] == capture.backend
        assert {"reference", "vectorized", "arrayapi"} <= set(info["registered"])
        assert info["device"] == capture.device == "cpu"
        assert info["probe"]["selected"] == capture.backend

    def test_backend_selection_reaches_snapshot(self):
        cap = run_trace(
            frames=2, workers=1, width=96, height=72, backend="vectorized"
        )
        assert cap.backend == "vectorized"
        assert cap.snapshot["backend"]["active"] == "vectorized"

    def test_write_round_trips(self, capture, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", capture.events)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == len(capture.events)


class TestSpanEvents:
    def test_deterministic_tid_mapping(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        events = span_events(tracer.spans())
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        (x,) = _complete(events)
        assert x["tid"] == 1 and x["pid"] == HOST_PID


class TestProfilerBridge:
    @pytest.fixture(scope="class")
    def schedule(self):
        detector = FaceDetector.pretrained("quick", seed=0)
        frame, _ = render_scene(120, 90, faces=1, rng=rng_for(5, "profiler-trace"))
        return detector.detect(frame).frame.schedule

    def test_to_chrome_trace_is_valid_and_matches_timeline(self, schedule, tmp_path):
        profiler = CommandLineProfiler(schedule)
        events = profiler.to_chrome_trace()
        validate_chrome_events(events)
        complete = _complete(events)
        assert len(complete) == len(schedule.timeline.traces)
        by_name = {(e["name"], e["tid"]): e for e in complete}
        for t in schedule.timeline.traces:
            event = by_name[(t.name, t.stream)]
            assert event["ts"] == pytest.approx(t.start_s * 1e6, abs=1e-3)
            assert event["dur"] == pytest.approx(t.duration_s * 1e6, abs=1e-3)
        path = profiler.write_chrome_trace(tmp_path / "kernels.json")
        assert json.loads(path.read_text())["traceEvents"]

    def test_table_rows_internally_consistent(self, schedule):
        """The rounding-drift fix: duration column == end - start, always."""
        profiler = CommandLineProfiler(schedule)
        text = profiler.concurrent_kernel_trace()
        rows = [
            line.split()
            for line in text.splitlines()
            if line and line.split()[0].startswith(("cascade", "filter", "scaling",
                                                    "integral", "transpose", "display"))
        ]
        assert rows
        for row in rows:
            start, end, dur = float(row[2]), float(row[3]), float(row[4])
            assert dur == pytest.approx(round(end - start, 2), abs=1e-9)
