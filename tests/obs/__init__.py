"""Observability-layer tests."""
