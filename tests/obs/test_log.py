"""StructuredLogger: formats, levels, and exact rate-limit accounting."""

import io
import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.log import (
    LOG_LEVEL_ENV,
    NULL_LOGGER,
    StructuredLogger,
    parse_level,
)


def lines(stream: io.StringIO) -> list[str]:
    return stream.getvalue().splitlines()


class TestFormats:
    def test_json_lines_parse_and_carry_fields(self):
        stream = io.StringIO()
        log = StructuredLogger("json", stream=stream)
        log.event("request", trace_id="abc", status=200, latency_s=0.01)
        (line,) = lines(stream)
        record = json.loads(line)
        assert record["event"] == "request"
        assert record["level"] == "info"
        assert record["trace_id"] == "abc"
        assert record["status"] == 200
        assert record["ts"] > 0
        # the grep target CI relies on: a literal '"event": "request"'
        assert '"event": "request"' in line

    def test_text_format(self):
        stream = io.StringIO()
        log = StructuredLogger("text", stream=stream)
        log.event("lifecycle", level="warning", phase="drain_begin", busy=2)
        (line,) = lines(stream)
        assert "WARNING" in line
        assert "lifecycle" in line
        assert "phase=drain_begin" in line
        assert "busy=2" in line

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError):
            StructuredLogger("xml")

    def test_non_serialisable_fields_are_stringified(self):
        stream = io.StringIO()
        log = StructuredLogger("json", stream=stream)
        log.event("weird", obj=object())
        record = json.loads(lines(stream)[0])
        assert "object object" in record["obj"]


class TestLevels:
    def test_below_level_is_dropped(self):
        stream = io.StringIO()
        log = StructuredLogger("json", level="warning", stream=stream)
        log.event("quiet", level="info")
        log.event("loud", level="error")
        assert len(lines(stream)) == 1
        assert log.emitted == 1

    def test_env_variable_controls_default_level(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "error")
        stream = io.StringIO()
        log = StructuredLogger("json", stream=stream)
        log.event("info-event")
        log.event("error-event", level="error")
        assert len(lines(stream)) == 1

    def test_parse_level_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            parse_level("verbose")
        with pytest.raises(ConfigurationError):
            StructuredLogger("json").event("x", level="loud")

    def test_enabled_for(self):
        log = StructuredLogger("json", level="warning", stream=io.StringIO())
        assert not log.enabled_for("info")
        assert log.enabled_for("error")
        assert not NULL_LOGGER.enabled_for("error")


class TestRateLimit:
    def test_suppressed_events_are_counted_exactly(self):
        """emitted lines + suppressed counts == events, always."""
        clock = [0.0]
        stream = io.StringIO()
        log = StructuredLogger(
            "json", stream=stream, rate_per_s=1.0, burst=2.0,
            clock=lambda: clock[0],
        )
        for _ in range(6):  # burst of 2 emits, 4 suppressed
            log.event("request", status=200)
        assert log.emitted == 2
        assert log.suppressed == 4
        clock[0] = 3.0  # refill 3 tokens
        log.event("request", status=200)
        records = [json.loads(line) for line in lines(stream)]
        assert len(records) == 3
        # the first post-refill event carries the suppressed count
        assert records[-1]["suppressed"] == 4
        assert log.emitted + log.suppressed == 7

    def test_buckets_are_per_event_name(self):
        clock = [0.0]
        stream = io.StringIO()
        log = StructuredLogger(
            "json", stream=stream, rate_per_s=1.0, burst=1.0,
            clock=lambda: clock[0],
        )
        log.event("a")
        log.event("b")  # different name, its own bucket
        assert log.emitted == 2
        assert log.suppressed == 0

    def test_rate_zero_disables_limiting(self):
        stream = io.StringIO()
        log = StructuredLogger("json", stream=stream, rate_per_s=0.0)
        for _ in range(1000):
            log.event("flood")
        assert log.emitted == 1000
        assert log.suppressed == 0

    def test_concurrent_events_all_accounted(self):
        stream = io.StringIO()
        log = StructuredLogger("json", stream=stream, rate_per_s=50.0, burst=100.0)

        def work():
            for _ in range(200):
                log.event("request")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.emitted == len(lines(stream))
        assert log.emitted + log.suppressed == 800


class TestDisabled:
    def test_null_logger_is_inert(self):
        NULL_LOGGER.event("anything", level="error")
        assert NULL_LOGGER.emitted == 0
        assert not NULL_LOGGER.enabled
