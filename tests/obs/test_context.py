"""TraceContext: W3C traceparent shape, adoption, and RNG hygiene."""

import random
import string

from repro.obs.context import TraceContext

HEX = set(string.hexdigits.lower())


def is_hex(value: str, width: int) -> bool:
    return len(value) == width and set(value) <= HEX


class TestMint:
    def test_shapes(self):
        ctx = TraceContext.mint()
        assert is_hex(ctx.trace_id, 32)
        assert is_hex(ctx.span_id, 16)
        assert int(ctx.trace_id, 16) != 0
        assert int(ctx.span_id, 16) != 0

    def test_mints_are_unique(self):
        ids = {TraceContext.mint().trace_id for _ in range(64)}
        assert len(ids) == 64

    def test_does_not_touch_global_rng(self):
        """Seeded-determinism tests must not see tracing in the RNG stream."""
        random.seed(1234)
        state = random.getstate()
        for _ in range(8):
            TraceContext.mint().child()
        assert random.getstate() == state


class TestWireFormat:
    def test_traceparent_round_trip(self):
        ctx = TraceContext.mint()
        header = ctx.traceparent()
        assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        assert TraceContext.parse(header) == ctx

    def test_parse_accepts_case_and_future_versions(self):
        trace, span = "AB" * 16, "CD" * 8
        ctx = TraceContext.parse(f"01-{trace}-{span}-00")
        assert ctx is not None
        assert ctx.trace_id == "ab" * 16  # normalised to lowercase
        assert ctx.span_id == "cd" * 8

    def test_parse_rejects_malformed(self):
        good_trace, good_span = "ab" * 16, "cd" * 8
        bad = [
            None,
            "",
            "nonsense",
            f"00-{good_trace}-{good_span}",  # missing flags
            f"00-{good_trace[:-2]}-{good_span}-01",  # short trace id
            f"00-{good_trace}-{good_span[:-2]}-01",  # short span id
            f"00-{'0' * 32}-{good_span}-01",  # all-zero trace id
            f"00-{good_trace}-{'0' * 16}-01",  # all-zero span id
            f"ff-{good_trace}-{good_span}-01",  # forbidden version
            f"0-{good_trace}-{good_span}-01",  # 1-hex version
            f"00-{'xy' * 16}-{good_span}-01",  # non-hex trace id
        ]
        for header in bad:
            assert TraceContext.parse(header) is None, header


class TestAdoption:
    def test_from_headers_adopts_trace_with_new_span(self):
        parent = TraceContext.mint()
        ctx = TraceContext.from_headers({"traceparent": parent.traceparent()})
        assert ctx.trace_id == parent.trace_id
        assert ctx.span_id != parent.span_id  # one hop deeper

    def test_from_headers_mints_without_or_with_bad_header(self):
        fresh = TraceContext.from_headers({})
        assert is_hex(fresh.trace_id, 32)
        bad = TraceContext.from_headers({"traceparent": "garbage"})
        assert is_hex(bad.trace_id, 32)

    def test_child_keeps_trace(self):
        ctx = TraceContext.mint()
        kid = ctx.child()
        assert kid.trace_id == ctx.trace_id
        assert kid.span_id != ctx.span_id
