"""Prometheus 0.0.4 exposition: sanitisation, rendering, JSON agreement."""

import re

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import (
    PROM_CONTENT_TYPE,
    render_prometheus,
    sanitize_metric_name,
)

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$"
)
_TYPE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<kind>counter|gauge|summary|histogram|untyped)$"
)


def parse_exposition(text: str) -> dict[str, float]:
    """Strict-ish 0.0.4 parser: every line must be a TYPE line or a
    sample; returns ``{name{labels}: value}``.  Raises on anything else,
    which is the test's point."""
    samples: dict[str, float] = {}
    typed: set[str] = set()
    for line in text.splitlines():
        if not line:
            continue
        type_match = _TYPE.match(line)
        if type_match:
            name = type_match.group("name")
            assert name not in typed, f"duplicate TYPE for {name}"
            typed.add(name)
            continue
        assert not line.startswith("#"), f"unparseable comment line {line!r}"
        sample = _SAMPLE.match(line)
        assert sample, f"unparseable sample line {line!r}"
        key = sample.group("name") + (sample.group("labels") or "")
        assert key not in samples, f"duplicate sample {key}"
        samples[key] = float(sample.group("value"))
    return samples


class TestSanitize:
    def test_deterministic_and_legal(self):
        assert sanitize_metric_name("serve.http.200") == "repro_serve_http_200"
        assert sanitize_metric_name("a-b c") == "repro_a_b_c"
        # idempotent on already-clean names
        assert sanitize_metric_name("engine_frames") == "repro_engine_frames"

    def test_content_type_is_004(self):
        assert "version=0.0.4" in PROM_CONTENT_TYPE


class TestRender:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc(7)
        reg.gauge("serve.inflight").set(3.0)
        for v in (1.0, 2.0, 3.0, 4.0):
            reg.histogram("serve.infer_s").observe(v)
        text = render_prometheus(reg.snapshot())
        samples = parse_exposition(text)
        assert samples["repro_serve_requests"] == 7
        assert samples["repro_serve_inflight"] == 3
        assert samples["repro_serve_inflight_max"] == 3
        assert samples['repro_serve_infer_s{quantile="0.5"}'] == 2.0
        assert samples['repro_serve_infer_s{quantile="0.95"}'] == 4.0
        assert samples["repro_serve_infer_s_sum"] == 10.0
        assert samples["repro_serve_infer_s_count"] == 4
        assert samples["repro_serve_infer_s_min"] == 1.0
        assert samples["repro_serve_infer_s_max"] == 4.0

    def test_integral_values_render_without_decimal_point(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(5)
        text = render_prometheus(reg.snapshot())
        assert "repro_n 5\n" in text

    def test_empty_registry_renders_empty_exposition(self):
        assert parse_exposition(render_prometheus(MetricsRegistry().snapshot())) == {}

    def test_sanitisation_collisions_raise(self):
        snapshot = {"counters": {"a.b": 1.0, "a-b": 2.0}, "gauges": {},
                    "histograms": {}}
        with pytest.raises(ConfigurationError):
            render_prometheus(snapshot)


class TestAgreement:
    def test_prom_and_json_agree_on_every_counter(self):
        """The acceptance check: both formats from one snapshot agree."""
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc(24)
        reg.counter("serve.http.200").inc(23)
        reg.counter("serve.http.429").inc(1)
        reg.histogram("serve.queue_wait_s").observe(0.25)
        snapshot = reg.snapshot()
        samples = parse_exposition(render_prometheus(snapshot))
        for name, value in snapshot["counters"].items():
            assert samples[sanitize_metric_name(name)] == value
        for name, summary in snapshot["histograms"].items():
            prom = sanitize_metric_name(name)
            assert samples[prom + "_count"] == summary["count"]
            assert samples[prom + "_sum"] == summary["sum"]
