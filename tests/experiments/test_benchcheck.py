"""``repro bench check``: artifact schema + baseline validation."""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.experiments.benchcheck import (
    REQUIRED_KEYS,
    REQUIRED_PROVENANCE,
    check_artifact,
    run_bench_check,
)
from repro.utils.provenance import provenance

_REPO = Path(__file__).resolve().parent.parent.parent
_BASELINES = _REPO / "benchmarks" / "baselines"


def _fastpath_payload() -> dict:
    return {
        "experiment": "fastpath",
        "schema_version": 1,
        "provenance": provenance(backend="vectorized", mode="fast"),
        "policies": {"off": {}, "exact": {}, "fast": {}},
        "speedup": 1.9,
        "speedup_vs_exact": 1.0,
        "recall": 1.0,
        "identical_exact": True,
        "exact_stats": {"anchors_pruned": 0},
    }


def _write(tmp_path: Path, name: str, payload) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestSchemaChecks:
    def test_valid_artifact_passes(self, tmp_path):
        path = _write(tmp_path, "BENCH_fastpath.json", _fastpath_payload())
        report = check_artifact(path)
        assert report.ok, report.failures
        assert report.experiment == "fastpath"
        assert report.checks_run > 0

    def test_missing_provenance_keys_fail(self, tmp_path):
        payload = _fastpath_payload()
        del payload["provenance"]["git_sha"]
        report = check_artifact(_write(tmp_path, "a.json", payload))
        assert not report.ok
        assert any("git_sha" in f for f in report.failures)

    def test_missing_required_experiment_key_fails(self, tmp_path):
        payload = _fastpath_payload()
        del payload["recall"]
        report = check_artifact(_write(tmp_path, "a.json", payload))
        assert any("recall" in f for f in report.failures)

    def test_unknown_experiment_fails(self, tmp_path):
        payload = _fastpath_payload()
        payload["experiment"] = "mystery"
        report = check_artifact(_write(tmp_path, "a.json", payload))
        assert any("unknown experiment" in f for f in report.failures)

    def test_bad_schema_version_fails(self, tmp_path):
        payload = _fastpath_payload()
        payload["schema_version"] = "one"
        report = check_artifact(_write(tmp_path, "a.json", payload))
        assert any("schema_version" in f for f in report.failures)

    def test_invalid_json_fails(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        report = check_artifact(path)
        assert any("invalid JSON" in f for f in report.failures)

    def test_missing_file_fails(self, tmp_path):
        report = check_artifact(tmp_path / "absent.json")
        assert report.failures == ["file not found"]


class TestBaselineChecks:
    def _baseline_dir(self, tmp_path: Path, checks: list[dict]) -> Path:
        bdir = tmp_path / "baselines"
        bdir.mkdir()
        (bdir / "fastpath.json").write_text(
            json.dumps({"experiment": "fastpath", "checks": checks})
        )
        return bdir

    def test_equals_min_max_pass(self, tmp_path):
        path = _write(tmp_path, "a.json", _fastpath_payload())
        bdir = self._baseline_dir(
            tmp_path,
            [
                {"path": "identical_exact", "equals": True},
                {"path": "recall", "min": 0.99},
                {"path": "exact_stats.anchors_pruned", "max": 0},
            ],
        )
        report = check_artifact(path, baselines_dir=bdir)
        assert report.ok, report.failures

    def test_min_respects_tolerance(self, tmp_path):
        payload = _fastpath_payload()
        payload["recall"] = 0.95
        path = _write(tmp_path, "a.json", payload)
        bdir = self._baseline_dir(tmp_path, [{"path": "recall", "min": 0.99}])
        strict = check_artifact(path, baselines_dir=bdir, tolerance=0.0)
        assert any("below baseline min" in f for f in strict.failures)
        loose = check_artifact(path, baselines_dir=bdir, tolerance=0.1)
        assert loose.ok, loose.failures

    def test_equals_mismatch_fails(self, tmp_path):
        payload = _fastpath_payload()
        payload["identical_exact"] = False
        path = _write(tmp_path, "a.json", payload)
        bdir = self._baseline_dir(
            tmp_path, [{"path": "identical_exact", "equals": True}]
        )
        report = check_artifact(path, baselines_dir=bdir)
        assert any("expected True" in f for f in report.failures)

    def test_missing_baseline_path_fails(self, tmp_path):
        path = _write(tmp_path, "a.json", _fastpath_payload())
        bdir = self._baseline_dir(tmp_path, [{"path": "no.such.key", "min": 1}])
        report = check_artifact(path, baselines_dir=bdir)
        assert any("absent from artifact" in f for f in report.failures)

    def test_exists_check_passes_on_present_path(self, tmp_path):
        path = _write(tmp_path, "a.json", _fastpath_payload())
        bdir = self._baseline_dir(
            tmp_path, [{"path": "provenance.backend", "exists": True}]
        )
        report = check_artifact(path, baselines_dir=bdir)
        assert report.ok, report.failures

    def test_exists_check_fails_on_absent_path(self, tmp_path):
        path = _write(tmp_path, "a.json", _fastpath_payload())
        bdir = self._baseline_dir(
            tmp_path, [{"path": "provenance.device", "exists": True}]
        )
        report = check_artifact(path, baselines_dir=bdir)
        assert any("expected path to be present" in f for f in report.failures)

    def test_exists_false_rejects_present_path(self, tmp_path):
        path = _write(tmp_path, "a.json", _fastpath_payload())
        bdir = self._baseline_dir(tmp_path, [{"path": "recall", "exists": False}])
        report = check_artifact(path, baselines_dir=bdir)
        assert any("expected path to be absent" in f for f in report.failures)

    def test_exists_accepts_null_values(self, tmp_path):
        # "exists" is a presence check, not a truthiness check: a field
        # legitimately published as null (probe path on an unknown host)
        # must satisfy it
        payload = _fastpath_payload()
        payload["provenance"]["probe"] = None
        path = _write(tmp_path, "a.json", payload)
        bdir = self._baseline_dir(
            tmp_path, [{"path": "provenance.probe", "exists": True}]
        )
        report = check_artifact(path, baselines_dir=bdir)
        assert report.ok, report.failures

    def test_checked_in_baselines_cover_known_experiments(self):
        """The repo's own baselines must parse and target known
        experiments with well-formed checks."""
        names = {p.stem for p in _BASELINES.glob("*.json")}
        assert {"throughput", "serving", "fastpath", "swap"} <= names
        for path in _BASELINES.glob("*.json"):
            baseline = json.loads(path.read_text())
            assert baseline["experiment"] in REQUIRED_KEYS
            for check in baseline["checks"]:
                assert "path" in check
                assert {"equals", "min", "max", "exists"} & set(check)


class TestSwapArtifact:
    def _swap_payload(self) -> dict:
        return {
            "experiment": "swap",
            "schema_version": 1,
            "provenance": provenance(backend="reference", mode="threads"),
            "workload": {"model": "quick", "swap_to": "quick_baseline"},
            "phases": {"steady": {}, "window": {}, "after": {}},
            "swap": {"status": 200, "flip_s": 0.001},
            "readyz": {"polls": 50, "not_ready": 0, "always_ready": True},
            "latency": {"steady_p95_s": 0.1, "swap_p95_s": 0.12, "ratio": 1.2},
            "failed_requests": 0,
            "versions": {"before": "quick@a", "after": "quick@b", "flipped": True},
        }

    def test_swap_artifact_passes_the_checked_in_baseline(self, tmp_path):
        path = _write(tmp_path, "BENCH_swap.json", self._swap_payload())
        report = check_artifact(path, baselines_dir=_BASELINES)
        assert report.ok, report.failures

    def test_swap_gates_catch_regressions(self, tmp_path):
        for mutation, needle in (
            ({"failed_requests": 3}, "failed_requests"),
            ({"readyz": {"polls": 5, "not_ready": 2, "always_ready": False}}, "readyz"),
            (
                {"latency": {"steady_p95_s": 0.1, "swap_p95_s": 0.3, "ratio": 3.0}},
                "latency.ratio",
            ),
            (
                {"versions": {"before": "a", "after": "a", "flipped": False}},
                "versions.flipped",
            ),
        ):
            payload = {**self._swap_payload(), **mutation}
            report = check_artifact(
                _write(tmp_path, "BENCH_swap.json", payload),
                baselines_dir=_BASELINES,
            )
            assert not report.ok
            assert any(needle in f for f in report.failures), (mutation, report.failures)


class TestRunBenchCheck:
    def test_empty_artifact_set_is_a_failure(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        result = run_bench_check()
        assert not result.ok
        assert "no BENCH_*.json" in result.format_report()

    def test_missing_baselines_dir_degrades_to_schema_only(self, tmp_path):
        path = _write(tmp_path, "BENCH_fastpath.json", _fastpath_payload())
        result = run_bench_check([path], baselines_dir=tmp_path / "nope")
        assert result.ok
        assert result.baselines_dir is None

    def test_aggregates_multiple_files(self, tmp_path):
        good = _write(tmp_path, "BENCH_a.json", _fastpath_payload())
        bad_payload = _fastpath_payload()
        bad_payload["experiment"] = 7
        bad = _write(tmp_path, "BENCH_b.json", bad_payload)
        result = run_bench_check([good, bad], baselines_dir=None)
        assert not result.ok
        assert [r.ok for r in result.reports] == [True, False]
        assert "FAIL" in result.format_report()

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            run_bench_check([], tolerance=-0.1)

    def test_provenance_constant_matches_provenance_helper(self):
        assert REQUIRED_PROVENANCE <= set(provenance())
