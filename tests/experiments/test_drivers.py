"""Smoke + shape tests for the experiment drivers on a micro profile.

The benchmarks run the paper-scale (quick/full) workloads; these tests run
the same drivers at the smallest sizes that still exercise every code path,
so `pytest tests/` stays fast while covering the experiment layer.
"""

import pytest

from repro.experiments.config import QUICK, ExperimentProfile, active_profile
from repro.errors import ConfigurationError
from repro.experiments.table1 import run_table1


MICRO = ExperimentProfile(
    name="micro",
    frame_width=256,
    frame_height=144,
    frames_per_trailer=1,
    fig5_frames=2,
    fig7_frames=1,
    fig8_pool_size=600,
    fig8_dataset_faces=80,
    fig9_mugshots=3,
    fig9_backgrounds=2,
)


class TestConfig:
    def test_active_profile_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert active_profile() is QUICK

    def test_active_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert active_profile().name == "full"

    def test_unknown_profile_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "gigantic")
        with pytest.raises(ConfigurationError):
            active_profile()

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentProfile(
                name="bad", frame_width=10, frame_height=10, frames_per_trailer=1,
                fig5_frames=1, fig7_frames=1, fig8_pool_size=1,
                fig8_dataset_faces=1, fig9_mugshots=1, fig9_backgrounds=1,
            )


class TestTable1Driver:
    def test_exact_match(self):
        result = run_table1()
        assert result.matches_paper
        assert "55660" in result.format_table().replace(",", "")

    def test_total(self):
        assert run_table1().total == 103_607


@pytest.mark.slow
class TestHeavyDrivers:
    """Micro-profile runs of the workload drivers (need cached cascades)."""

    def test_fig6_overlap(self):
        from repro.experiments.fig6 import run_fig6

        result = run_fig6(MICRO)
        assert result.serial_overlaps == 0
        assert result.concurrent.makespan_s < result.serial.makespan_s
        assert "stream" in result.format_trace()

    def test_fig7_rejections(self):
        from repro.experiments.fig7 import run_fig7

        result = run_fig7(MICRO)
        rates = result.rejection_rate_by_stage
        assert rates.sum() == pytest.approx(1.0)
        assert rates[0] > 0.5

    def test_fig8_curves(self):
        from repro.experiments.fig8 import run_fig8

        result = run_fig8(MICRO)
        assert set(result.curves) == {
            "Intel Core i7-2600K", "Dual Intel Xeon E5472",
        }
        for curve in result.curves.values():
            assert curve[8] < curve[1]
        assert "threads" in result.format_table()

    def test_ablation_window_strategy(self):
        from repro.experiments.ablations import run_window_strategy

        result = run_window_strategy(MICRO)
        assert result.collapse_ratio < 1.0

    def test_ablation_integral_paths(self):
        from repro.experiments.ablations import run_integral_paths

        result = run_integral_paths()
        assert len(result.rows) == 3

    def test_ablation_encoding(self):
        from repro.experiments.ablations import run_encoding_ablation

        result = run_encoding_ablation(n_windows=40)
        assert result.fits_packed and not result.fits_raw
        assert 0.9 <= result.depth_agreement <= 1.0
